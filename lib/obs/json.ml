type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let int n = Num (float_of_int n)
let str s = Str s

(* ---- printing ------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else if Float.is_nan x || Float.abs x = Float.infinity then
    (* JSON has no NaN/inf; null is the least-surprising degradation *)
    Buffer.add_string buf "null"
  else Buffer.add_string buf (Printf.sprintf "%.6g" x)

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Num x -> add_num buf x
    | Str s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List elems ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i e ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            go (depth + 1) e)
          elems;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, e) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            escape buf k;
            Buffer.add_string buf ": ";
            go (depth + 1) e)
          fields;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ---- parsing -------------------------------------------------------- *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape"
                   else begin
                     let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
                     (* ASCII range only; anything above degrades to '?' *)
                     Buffer.add_char buf (if code < 128 then Char.chr code else '?');
                     pos := !pos + 4
                   end
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> Num x
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let elems = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            elems := parse_value () :: !elems;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !elems)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "JSON error at offset %d: %s" at msg)

(* ---- accessors ------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_float = function Num x -> Some x | _ -> None
let to_list = function List l -> l | _ -> []
