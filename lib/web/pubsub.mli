(** Publish/subscribe as plain reactive rules (Thesis 3).

    Push requires the producer to know "other, interested Web sites".
    On an open Web that interest is declared by the consumers: this
    module provides the standard rule set a producer installs to manage
    a subscriber register and fan out notifications — no broker, no
    super-peer, just point-to-point events (the fan-out rule fires once
    per answer of the subscriber query, which is exactly the ECA
    per-answer semantics of {!Xchange_rules.Eca}).

    Protocol (all payloads are ordinary data terms):
    - [subscribe\[topic\[T\], host\[H\]\]] — H wants notifications for T;
    - [unsubscribe\[topic\[T\], host\[H\]\]];
    - [publish\[topic\[T\], body\[...\]\]] — producers publish through their
      own node (often from another rule's action);
    - subscribers receive [notify\[topic\[T\], body\[...\]\]].

    {b Scale.}  The register document stays the source of truth, but a
    {!Registry} attached to the store mirrors it into a
    {!Xchange_query.Sub_index} and serves the fan-out rule's subscriber
    query through {!Store.set_dynamic} — a publish then costs
    O(subscribers of its topic), not O(all subscribers).  The mirror is
    maintained incrementally from the store's change feed; any register
    mutation it cannot interpret (nested entries, non-text topics,
    handcrafted structure) triggers a full resync, and registers that
    are not plain pair lists disable the fast path entirely until they
    are clean again — answers are always exactly those of the document
    query.  [XCHANGE_NO_SUBINDEX=1] keeps the rule-driven linear-scan
    path as the differential oracle, mirroring [XCHANGE_NO_PLAN]. *)

open Xchange_data
open Xchange_rules
open Xchange_obs

val subscribers_doc : string
(** ["/subscribers"] — the register document. *)

val empty_register : unit -> Term.t

val sub_entry_q : Xchange_query.Qterm.t
(** [sub\[topic\[var T\], host\[var H\]\]] — the register entry pattern the
    fan-out rule queries (one answer per subscription). *)

val publisher_ruleset : ?name:string -> unit -> Ruleset.t
(** The three rules (subscribe, unsubscribe, fan out). *)

val subscribe : topic:string -> host:string -> Term.t
val unsubscribe : topic:string -> host:string -> Term.t
val publish : topic:string -> Term.t -> Term.t

val subscribers : ?index:bool -> Store.t -> topic:string -> string list
(** Hosts currently subscribed to a topic, sorted.  By default served
    through {!Store.query} — index-pruned, memoized, and answered
    directly by an attached {!Registry}; [~index:false] scans the
    register document with the plain interpreter (the test oracle). *)

(** Topic-keyed subscription index over the register document. *)
module Registry : sig
  type t

  val create : unit -> t
  (** A standalone registry (no store): populate with {!subscribe} /
      {!unsubscribe} and query with {!match_publish} — the shape the
      benchmarks drive. *)

  val attach : Store.t -> t
  (** Mirror the store's [/subscribers] document: subscribes to the
      store's change feed, and — unless [XCHANGE_NO_SUBINDEX=1] —
      installs the {!Store.set_dynamic} answerer so the fan-out rule's
      register query is served from the index.  The mirror is lazy: it
      (re)builds from the document on first use and after any
      unrecognised mutation.  Do not combine with direct {!subscribe} /
      {!unsubscribe} calls — attached registries are maintained by the
      change feed alone. *)

  val subscribe : t -> topic:string -> host:string -> unit
  (** Standalone registries only.  Idempotent per (topic, host). *)

  val unsubscribe : t -> topic:string -> host:string -> bool
  (** Standalone registries only.  [false] when the pair was unknown. *)

  val subscribers : t -> topic:string -> string list
  (** Hosts subscribed to exactly this topic, sorted. *)

  val match_publish : t -> Term.t -> string list
  (** Hosts whose subscription query matches the publish payload —
      candidate selection through the trie, confirmed by compiled-plan
      execution.  Sorted. *)

  val size : t -> int
  (** Live mirrored (topic, host) pairs. *)

  val synced : t -> bool
  (** The mirror currently reflects the register without pending resync
      and without degraded (exotic-register) fallback. *)

  val exotic : t -> bool
  (** The register holds entries beyond root-level text pairs; fast
      paths are off and queries fall back to the document. *)

  val stats : t -> Xchange_query.Sub_index.stats
  val metrics : t -> Obs.Metrics.t
end
