(** The discrete-event scheduler: one timeline for the whole simulated
    Web.

    Every future occurrence — a message delivery, a polling tick, an
    engine heartbeat, a rule timer deadline, a fetch timeout — is a
    thunk on one priority queue ordered by [(time, sequence number)].
    The scheduler owns the global clock: time only moves when the next
    occurrence is executed, so the simulation is deterministic and
    replayable bit-for-bit.

    Occurrences come in two flavours for quiescence purposes:
    {e holding} occurrences (message deliveries, fetch timeouts)
    represent outstanding communication and keep
    [Network.run_until_quiet] going; {e non-holding} occurrences
    (periodic tickers, engine timer deadlines) fire when time reaches
    them but never hold the simulation open by themselves. *)

open Xchange_event
open Xchange_obs

type t

(** Tie-break order within one instant.  [Local] occurrences carry the
    timeline's own sequence numbers; message deliveries are ranked by
    the sender-stamped message identity [(origin host, per-origin
    sequence, duplicate lane)] instead, which is computable on whatever
    timeline the sender runs.  This is what makes the sharded parallel
    scheduler ({!Partition}) bit-identical to the sequential run: the
    merged delivery order depends only on the stamps, never on which
    queue an occurrence waited in.  At equal time, every [Local]
    occurrence runs before every [Msg] delivery. *)
module Rank : sig
  type t =
    | Local of int
    | Msg of { origin : string; n : int; dup : int }

  val compare : t -> t -> int
end

type stats = {
  mutable scheduled : int;  (** one-shot occurrences ever enqueued *)
  mutable executed : int;  (** occurrences run (including ticker firings) *)
  mutable max_queue : int;  (** high-water mark of the queue length *)
}
(** Legacy view: {!stats} builds this record from the scheduler's
    {!Obs.Metrics} registry cells at call time (a snapshot, not a live
    reference). *)

val create : ?origin:Clock.time -> unit -> t

val now : t -> Clock.time
(** The global simulation clock. *)

val at : t -> ?holds:bool -> Clock.time -> (Clock.time -> unit) -> unit
(** Schedule a one-shot occurrence.  Times in the past are clamped to
    [now] (it still runs via the queue, never re-entrantly).  The thunk
    receives the clock value at execution.  [holds] (default [true])
    marks the occurrence as outstanding communication for {!pending} /
    {!next_holding}. *)

val at_msg :
  t -> ?holds:bool -> origin:string -> n:int -> dup:int -> Clock.time -> (Clock.time -> unit) -> unit
(** Schedule a message delivery, ranked by its sender stamp (see
    {!Rank}).  [dup] is 0 for the original copy, 1 for a fault-injected
    ghost.  If the exact [(time, origin, n, dup)] slot is already taken
    (only possible for raw harness messages that reuse a counter), the
    delivery steps to the next free [dup] lane instead of replacing the
    earlier entry. *)

val after : t -> ?holds:bool -> Clock.span -> (Clock.time -> unit) -> unit
(** [after t span f] = [at t (now t + span) f]. *)

val cancellable : t -> ?holds:bool -> Clock.time -> (Clock.time -> unit) -> unit -> unit
(** Like {!at}, but returns a cancel thunk.  Cancelling removes the
    occurrence from the queue (and from the holding count); cancelling
    after it has executed is a no-op.  Used for timeouts that are
    usually beaten by the event they guard. *)

val every : t -> ?phase:Clock.span -> period:Clock.span -> (Clock.time -> unit) -> unit
(** A recurring occurrence, first at [now + phase] (default: [period]),
    then every [period].  Recurring occurrences never hold the
    simulation open. *)

val next_due : t -> Clock.time option
(** Time of the earliest queued occurrence of any kind. *)

val next_holding : t -> Clock.time option
(** Time of the earliest {e holding} occurrence ([None] when only
    tickers and timers remain). *)

val pending : t -> int
(** Number of queued holding occurrences. *)

val queue_length : t -> int
(** All queued occurrences (including recurring ones). *)

val run_until : t -> Clock.time -> unit
(** Execute every occurrence due at or before the given time, in
    [(time, seq)] order — thunks may schedule further occurrences,
    which are executed in turn if due — then set the clock to the given
    time (if later). *)

val step : t -> bool
(** Execute the earliest occurrence (advancing the clock to it);
    [false] when the queue is empty. *)

val stats : t -> stats

val metrics : t -> Obs.Metrics.t
(** The scheduler's registry: [sched.scheduled], [sched.executed],
    [sched.max_queue], plus pull gauges [sched.queue_length],
    [sched.holding], and [sched.now]. *)
