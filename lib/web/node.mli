(** A Web site: a host name, a persistent store, and a local rule engine
    (Thesis 2).

    The node is where everything meets: incoming event messages are
    handed to the engine; actions update the local store or send new
    messages; store updates are reflected back to the engine as local
    ["update"] events (which is what lets derived ECA rules react to
    data changes); and — Thesis 11 — a rule set received as an event
    with label {!rules_label} is decoded and loaded into the engine,
    provided a rule decoder has been installed and [accept_rules] is
    set.

    A node never touches other nodes directly: all remote interaction
    goes through the [send] capability and the query [env] the network
    layer provides. *)

open Xchange_data
open Xchange_query
open Xchange_event
open Xchange_rules
open Xchange_obs

type t

val rules_label : string
(** ["xchange:rules"] — events with this label carry reified rule sets. *)

val create :
  ?horizon:Clock.span ->
  ?accept_rules:bool ->
  ?accept_updates:bool ->
  ?durable:bool ->
  ?snapshot_every:int ->
  host:string ->
  Ruleset.t ->
  (t, string) result
(** [accept_rules] opts in to loading rule sets received as events
    (Thesis 11); [accept_updates] opts in to applying update requests
    from remote nodes (Thesis 8).  Both default to [false] — the open
    Web is an uncontrolled place (Thesis 12).

    [durable] (default [true], overridden to [false] by
    [XCHANGE_NO_WAL]) gives the node a write-ahead log: every input is
    logged before processing and a snapshot of the whole volatile state
    is folded in every [snapshot_every] records (default 256), so
    {!crash} followed by {!recover} reconstructs the node exactly.
    [durable:false] nodes are volatile: they recover amnesic. *)

val create_exn :
  ?horizon:Clock.span ->
  ?accept_rules:bool ->
  ?accept_updates:bool ->
  ?durable:bool ->
  ?snapshot_every:int ->
  host:string ->
  Ruleset.t ->
  t

val host : t -> string
val store : t -> Store.t
val engine : t -> Engine.t

val fresh_event_id : t -> int
(** Next id on the node's origin lane ({!Event.scoped_id}).  Every event
    the node originates — send actions, local update notifications,
    engine-derived events — is stamped from this lane-local sequence, a
    pure function of the node's own execution history; ids therefore
    come out identical whether the network runs on one timeline or
    sharded across domains.  Harness code injecting events {e as} this
    node should draw from the same allocator. *)

val fresh_msg_id : t -> int
(** Next value of the node's message sequence.  A message's identity is
    [(host, msg_id)]; fault coins and delivery ranks key on it. *)

val fresh_req_id : t -> int
(** Next value of the node's fetch-request sequence.  Response handlers
    are node-local ({!expect_response}), so per-requester uniqueness
    suffices — and keeps request ids deterministic under domain
    sharding, unlike the global {!Message.fresh_req_id} fallback. *)

val set_rule_decoder : t -> (Term.t -> (Ruleset.t, string) result) -> unit
(** Install the meta decoder (wired to {!Xchange_lang.Meta} by the
    façade; injected here to keep the Web substrate independent of the
    surface language). *)

(** Capabilities granted by the hosting network. *)
type context = {
  env : Condition.env;  (** local + remote document access *)
  send : Message.t -> unit;  (** transmit a message *)
  now : unit -> Clock.time;
}

val receive_event : t -> context -> Event.t -> Engine.outcome
(** Deliver one event: meta rule-loading, engine processing, and the
    cascade of local update events (bounded to {!max_cascade_depth};
    deeper cascades are reported as errors). *)

val receive_get :
  t -> context -> from:string -> req_id:int -> path:string -> kind:Message.res_kind -> unit
(** Answer an HTTP-style GET with a Response message ([kind = Rdf]
    requests are answered with the graph's term encoding). *)

val receive_update :
  t -> context -> from:string -> msg_id:int -> Action.update -> Engine.outcome
(** Apply an update request from a remote node (rejected, with an error
    recorded, unless the node was created with [accept_updates]); the
    resulting local [update] events cascade through the engine.  The
    [(from, msg_id)] pair is the request's identity: an already-applied
    update is dropped as a duplicate, which makes both at-least-once
    delivery and post-recovery redelivery safe. *)

val expect_response : t -> req_id:int -> (Term.t option -> Clock.time -> unit) -> unit
val receive_response : t -> context -> req_id:int -> Term.t option -> unit

val forget_response : t -> req_id:int -> unit
(** Drop a pending response handler (fetch timed out or was superseded
    by a retry); a late Response with that id is then ignored. *)

val advance : t -> context -> Clock.time -> Engine.outcome
(** Move the node's engine clock (absence rules may fire). *)

val max_cascade_depth : int

val logs : t -> string list
(** Lines written by [Log] actions, oldest first. *)

val firings : t -> int
val errors : t -> (string * string) list

val duplicate_events : t -> int
(** Network events discarded because their id had already been processed
    (at-least-once delivery made safe by the idempotent receiver). *)

val metrics : t -> Obs.Metrics.t
(** The node's registry: [node.firings], [node.duplicate_events], the
    pull cell [node.rule_errors], and — for durable nodes — the [wal.*]
    cells of the node's log. *)

(** {1 Durability (write-ahead log)} *)

val wal : t -> Wal.t option
(** The node's log; [None] for volatile nodes. *)

val checkpoint : t -> at:Clock.time -> unit
(** Fold the node's current volatile state into a [Snapshot] record and
    compact the log (reified-rule-set events are kept: they are engine
    structure, not snapshot state).  Happens automatically every
    [snapshot_every] records; explicit calls are for harnesses that want
    a baseline at a known instant.  No-op on volatile nodes. *)

val crash : t -> unit
(** Kill the node process: store contents, engine state, logs, errors,
    pending response handlers, and dedup tables are wiped; the engine
    reboots on the provisioning-time rule set.  The WAL (the durable
    medium) and the id-lane counters survive — the latter so an amnesic
    reboot cannot re-mint ids carried by pre-crash events still in
    flight.  The network around the node is untouched: crash/restart
    scheduling is {!Network.schedule_crash}'s job. *)

val recover : t -> context -> (int, string) result
(** Rebuild the node from its WAL after {!crash}: reload pre-snapshot
    rule sets, restore the latest snapshot (store, dedup sets, logs,
    errors, counters), re-prime composite-event state from the
    snapshot's input tail, then logically replay every logged input
    after the snapshot — with sends suppressed (the pre-crash messages
    are already in the surviving network) and the clock pinned to each
    record's original time, so the rebuilt state is bit-identical to the
    pre-crash state.  A corrupt log is cut back to its longest valid
    prefix first; recovery then reconstructs everything up to the last
    valid record (the documented at-least-once window).  Returns the
    number of records replayed; [Ok 0] for volatile nodes. *)
