(** A Web site: a host name, a persistent store, and a local rule engine
    (Thesis 2).

    The node is where everything meets: incoming event messages are
    handed to the engine; actions update the local store or send new
    messages; store updates are reflected back to the engine as local
    ["update"] events (which is what lets derived ECA rules react to
    data changes); and — Thesis 11 — a rule set received as an event
    with label {!rules_label} is decoded and loaded into the engine,
    provided a rule decoder has been installed and [accept_rules] is
    set.

    A node never touches other nodes directly: all remote interaction
    goes through the [send] capability and the query [env] the network
    layer provides. *)

open Xchange_data
open Xchange_query
open Xchange_event
open Xchange_rules
open Xchange_obs

type t

val rules_label : string
(** ["xchange:rules"] — events with this label carry reified rule sets. *)

val create :
  ?horizon:Clock.span ->
  ?accept_rules:bool ->
  ?accept_updates:bool ->
  host:string ->
  Ruleset.t ->
  (t, string) result
(** [accept_rules] opts in to loading rule sets received as events
    (Thesis 11); [accept_updates] opts in to applying update requests
    from remote nodes (Thesis 8).  Both default to [false] — the open
    Web is an uncontrolled place (Thesis 12). *)

val create_exn :
  ?horizon:Clock.span ->
  ?accept_rules:bool ->
  ?accept_updates:bool ->
  host:string ->
  Ruleset.t ->
  t

val host : t -> string
val store : t -> Store.t
val engine : t -> Engine.t

val fresh_event_id : t -> int
(** Next id on the node's origin lane ({!Event.scoped_id}).  Every event
    the node originates — send actions, local update notifications,
    engine-derived events — is stamped from this lane-local sequence, a
    pure function of the node's own execution history; ids therefore
    come out identical whether the network runs on one timeline or
    sharded across domains.  Harness code injecting events {e as} this
    node should draw from the same allocator. *)

val fresh_msg_id : t -> int
(** Next value of the node's message sequence.  A message's identity is
    [(host, msg_id)]; fault coins and delivery ranks key on it. *)

val fresh_req_id : t -> int
(** Next value of the node's fetch-request sequence.  Response handlers
    are node-local ({!expect_response}), so per-requester uniqueness
    suffices — and keeps request ids deterministic under domain
    sharding, unlike the global {!Message.fresh_req_id} fallback. *)

val set_rule_decoder : t -> (Term.t -> (Ruleset.t, string) result) -> unit
(** Install the meta decoder (wired to {!Xchange_lang.Meta} by the
    façade; injected here to keep the Web substrate independent of the
    surface language). *)

(** Capabilities granted by the hosting network. *)
type context = {
  env : Condition.env;  (** local + remote document access *)
  send : Message.t -> unit;  (** transmit a message *)
  now : unit -> Clock.time;
}

val receive_event : t -> context -> Event.t -> Engine.outcome
(** Deliver one event: meta rule-loading, engine processing, and the
    cascade of local update events (bounded to {!max_cascade_depth};
    deeper cascades are reported as errors). *)

val receive_get :
  t -> context -> from:string -> req_id:int -> path:string -> kind:Message.res_kind -> unit
(** Answer an HTTP-style GET with a Response message ([kind = Rdf]
    requests are answered with the graph's term encoding). *)

val receive_update : t -> context -> from:string -> Action.update -> Engine.outcome
(** Apply an update request from a remote node (rejected, with an error
    recorded, unless the node was created with [accept_updates]); the
    resulting local [update] events cascade through the engine. *)

val expect_response : t -> req_id:int -> (Term.t option -> Clock.time -> unit) -> unit
val receive_response : t -> context -> req_id:int -> Term.t option -> unit

val forget_response : t -> req_id:int -> unit
(** Drop a pending response handler (fetch timed out or was superseded
    by a retry); a late Response with that id is then ignored. *)

val advance : t -> context -> Clock.time -> Engine.outcome
(** Move the node's engine clock (absence rules may fire). *)

val max_cascade_depth : int

val logs : t -> string list
(** Lines written by [Log] actions, oldest first. *)

val firings : t -> int
val errors : t -> (string * string) list

val duplicate_events : t -> int
(** Network events discarded because their id had already been processed
    (at-least-once delivery made safe by the idempotent receiver). *)

val metrics : t -> Obs.Metrics.t
(** The node's registry: [node.firings], [node.duplicate_events], and
    the pull cell [node.rule_errors]. *)
