open Xchange_core
open Xchange_data
open Xchange_query
open Xchange_event
open Xchange_rules
open Xchange_obs

let rules_label = "xchange:rules"
let max_cascade_depth = 32

(* Bound on the snapshot input tail for horizonless nodes (a horizon
   prunes by time; without one, composite state could reach arbitrarily
   far back and the tail is simply capped). *)
let max_tail_entries = 4096

type t = {
  host : string;
  store : Store.t;
  ruleset0 : Ruleset.t;
      (** the provisioning-time rule program: what a crashed node reboots
          with, before the WAL re-delivers rule sets it learned later *)
  lane : int;
      (** the node's event-id origin lane ({!Event.fresh_origin}),
          allocated at creation time on the orchestrating domain so it
          is identical across sequential and sharded runs *)
  event_n : int ref;  (** lane-local event counter, shared with the engine *)
  msg_n : int ref;  (** per-node message sequence: a message's identity
                        is [(host, msg_n)] *)
  req_n : int ref;  (** per-node fetch request sequence; response
                        handlers are node-local, so uniqueness per
                        requester suffices *)
  mutable engine : Engine.t;
  horizon : Clock.span option;
  accept_rules : bool;
  mutable decoder : (Term.t -> (Ruleset.t, string) result) option;
  mutable log_lines : string list;  (** newest first *)
  m : Obs.Metrics.t;
  mutable n_firings : int;
      (** a plain cell rather than a counter: a crash zeroes it and
          recovery reconstructs it (snapshot baseline + replay) *)
  c_duplicates : Obs.Metrics.Counter.t;
  mutable errors : (string * string) list;
  accept_updates : bool;
  mutable response_handlers : (int * (Term.t option -> Clock.time -> unit)) list;
  seen_events : (int, unit) Hashtbl.t;
      (** ids of network events already processed — the idempotent
          receiver making at-least-once delivery (duplicated messages,
          retried sends) safe *)
  seen_updates : (string * int, unit) Hashtbl.t;
      (** identities [(from_host, msg_id)] of remote updates already
          applied — same idempotence for the update channel, which also
          makes recovery replay safe against in-flight duplicates *)
  wal : Wal.t option;  (** [None]: a volatile node (recovers amnesic) *)
  snapshot_every : int;
  mutable wal_active : bool;
      (** cleared by {!crash}, restored at the end of {!recover}:
          replayed inputs are already in the log and must not be
          appended a second time *)
  tail : Wal.tail_entry Istore.Dq.t;
      (** the engine's recent input sequence (events it processed and
          clock advances), pruned to the horizon — embedded in snapshots
          to re-prime composite-event state *)
}

type context = {
  env : Condition.env;
  send : Message.t -> unit;
  now : unit -> Clock.time;
}

let create ?horizon ?(accept_rules = false) ?(accept_updates = false) ?(durable = true)
    ?(snapshot_every = 256) ~host ruleset =
  let lane = Event.fresh_origin () in
  let event_n = ref 0 in
  let fresh_event_id () =
    incr event_n;
    Event.scoped_id ~origin:lane ~n:!event_n
  in
  match Engine.create ?horizon ~fresh_event_id ruleset with
  | Error e -> Error e
  | Ok engine ->
      let m = Obs.Metrics.create () in
      let wal = if durable && not Escape.no_wal then Some (Wal.create ~metrics:m ()) else None in
      let t =
        {
          host;
          store = Store.create ();
          ruleset0 = ruleset;
          lane;
          event_n;
          msg_n = ref 0;
          req_n = ref 0;
          engine;
          horizon;
          accept_rules;
          accept_updates;
          decoder = None;
          log_lines = [];
          m;
          n_firings = 0;
          c_duplicates = Obs.Metrics.counter m "node.duplicate_events";
          errors = [];
          response_handlers = [];
          seen_events = Hashtbl.create 64;
          seen_updates = Hashtbl.create 16;
          wal;
          snapshot_every = max 1 snapshot_every;
          wal_active = wal <> None;
          tail = Istore.Dq.create ();
        }
      in
      Obs.Metrics.counter_fn m "node.firings" (fun () -> t.n_firings);
      Obs.Metrics.counter_fn m "node.rule_errors" (fun () -> List.length t.errors);
      Ok t

let create_exn ?horizon ?accept_rules ?accept_updates ?durable ?snapshot_every ~host ruleset =
  match create ?horizon ?accept_rules ?accept_updates ?durable ?snapshot_every ~host ruleset with
  | Ok t -> t
  | Error e -> invalid_arg ("Node.create: " ^ e)

let host t = t.host
let store t = t.store
let engine t = t.engine
let wal t = t.wal

let fresh_event_id t =
  incr t.event_n;
  Event.scoped_id ~origin:t.lane ~n:!(t.event_n)

let fresh_msg_id t =
  incr t.msg_n;
  !(t.msg_n)

let fresh_req_id t =
  incr t.req_n;
  !(t.req_n)
let set_rule_decoder t decoder = t.decoder <- Some decoder

let note_error t rule msg = t.errors <- (rule, msg) :: t.errors

let wal_append t r =
  if t.wal_active then match t.wal with Some w -> Wal.append w r | None -> ()

let tail_time = function Wal.T_event e -> Event.time e | Wal.T_advance tm -> tm

(* Record one engine input for future snapshots; drop entries the
   horizon has aged out (and cap unconditionally). *)
let push_tail t entry ~now =
  if t.wal <> None then begin
    Istore.Dq.push_back t.tail entry;
    (match t.horizon with
    | Some h ->
        let cutoff = now - h in
        let rec drop () =
          match Istore.Dq.peek_front t.tail with
          | Some e when tail_time e < cutoff ->
              ignore (Istore.Dq.pop_front t.tail);
              drop ()
          | _ -> ()
        in
        drop ()
    | None -> ());
    while Istore.Dq.length t.tail > max_tail_entries do
      ignore (Istore.Dq.pop_front t.tail)
    done
  end

(* Build the action capabilities for one processing step; update
   notifications accumulate in [pending] as local events. *)
let ops_for t ctx pending =
  let local_apply u =
    match Store.apply t.store u with
    | Error e -> Error e
    | Ok (n, notifications) ->
        wal_append t (Wal.Update u);
        List.iter
          (fun { Store.summary; _ } ->
            let ev =
              Event.make ~id:(fresh_event_id t) ~sender:t.host ~recipient:t.host
                ~occurred_at:(ctx.now ()) ~label:"update" summary
            in
            pending := !pending @ [ ev ])
          notifications;
        Ok n
  in
  let is_remote u =
    let target_host = Uri.host (Action.update_doc u) in
    if target_host <> "" && not (String.equal target_host t.host) then Some target_host
    else None
  in
  {
    Action.update =
      (fun u ->
        match is_remote u with
        | Some target_host ->
            (* a remote resource: ship the update to its owner (Thesis 8:
               updates of Web resources anywhere; asynchronous, reported as
               one affected node) *)
            let u = Action.with_update_doc u (Uri.path (Action.update_doc u)) in
            ctx.send
              (Message.make ~msg_id:(fresh_msg_id t) ~from_host:t.host ~to_host:target_host
                 ~sent_at:(ctx.now ()) (Message.Update u));
            Ok 1
        | None -> local_apply u);
    txn_update =
      (fun u ->
        match is_remote u with
        | Some target_host ->
            (* the dynamic half of transaction validation: a shipped
               update cannot be rolled back, so inside [Atomic] it is a
               failure, not a send *)
            Error
              (Fmt.str "transactional update targets remote store %s: cannot be atomic"
                 target_host)
        | None -> local_apply u);
    send =
      (fun ~recipient ~label ~ttl ~delay payload ->
        let to_host = Uri.host recipient in
        let to_host = if to_host = "" then t.host else to_host in
        let departs = Clock.add (ctx.now ()) (Option.value ~default:0 delay) in
        let event =
          Event.make ~id:(fresh_event_id t) ~sender:t.host ~recipient ~occurred_at:departs
            ?ttl ~label payload
        in
        ctx.send
          (Message.make ~msg_id:(fresh_msg_id t) ~from_host:t.host ~to_host ~sent_at:departs
             (Message.Event event)));
    log = (fun line -> t.log_lines <- line :: t.log_lines);
    now = ctx.now;
    checkpoint =
      (fun () ->
        let b = Store.backup t.store in
        let saved_pending = !pending in
        let wal_mark =
          match t.wal with
          | Some w when t.wal_active -> Some (w, Wal.mark w)
          | _ -> None
        in
        fun () ->
          Store.rollback t.store b;
          (* rolled-back writes must not cascade update events either,
             and their [Update] audit records must leave the log: an
             aborted transaction never happened *)
          pending := saved_pending;
          match wal_mark with Some (w, m) -> Wal.truncate w m | None -> ());
  }

let merge_outcomes (a : Engine.outcome) (b : Engine.outcome) =
  {
    Engine.firings = a.Engine.firings @ b.Engine.firings;
    derived_events = a.Engine.derived_events @ b.Engine.derived_events;
    errors = a.Engine.errors @ b.Engine.errors;
  }

let empty_outcome = { Engine.firings = []; derived_events = []; errors = [] }

let record t ~at (outcome : Engine.outcome) =
  t.n_firings <- t.n_firings + List.length outcome.Engine.firings;
  List.iter
    (fun f -> wal_append t (Wal.Firing { rule = f.Eca.rule; at }))
    outcome.Engine.firings;
  t.errors <- List.rev_append outcome.Engine.errors t.errors;
  outcome

(* Run the engine on an event, then on the local update events its
   actions produced, and so on — bounded. *)
let cascade t ctx first =
  let pending = ref [ first ] in
  let ops = ops_for t ctx pending in
  let rec go depth acc =
    match !pending with
    | [] -> acc
    | e :: rest ->
        pending := rest;
        if depth > max_cascade_depth then begin
          note_error t "<cascade>" "update cascade exceeded maximum depth";
          acc
        end
        else begin
          push_tail t (Wal.T_event e) ~now:(Event.time e);
          let outcome = Engine.handle_event t.engine ~env:ctx.env ~ops e in
          go (depth + 1) (merge_outcomes acc outcome)
        end
  in
  go 0 empty_outcome

let load_rules t payload =
  match t.decoder with
  | None -> Error "no rule decoder installed"
  | Some decode -> (
      match decode payload with
      | Error e -> Error e
      | Ok ruleset -> (
          match Engine.load_ruleset t.engine ruleset with
          | Error e -> Error e
          | Ok engine ->
              t.engine <- engine;
              Ok ()))

(* Build and log a snapshot record of the whole volatile state, then
   compact: everything the snapshot subsumes can go, except reified
   rule sets (engine structure, not snapshot state). *)
let checkpoint t ~at =
  match t.wal with
  | None -> ()
  | Some w ->
      let keys tbl = Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort compare in
      let snap =
        {
          Wal.s_at = at;
          s_store = Store.snapshot t.store;
          s_event_n = !(t.event_n);
          s_msg_n = !(t.msg_n);
          s_req_n = !(t.req_n);
          s_firings = t.n_firings;
          s_seen = keys t.seen_events;
          s_seen_updates = keys t.seen_updates;
          s_logs = t.log_lines;
          s_errors = t.errors;
          s_tail = Istore.Dq.to_list t.tail;
        }
      in
      Wal.append w (Wal.Snapshot snap);
      Wal.compact w ~keep:(function
        | Wal.Event e -> String.equal e.Event.label rules_label
        | _ -> false)

let maybe_checkpoint t ~at =
  match t.wal with
  | Some w when t.wal_active && Wal.records_since_snapshot w >= t.snapshot_every ->
      checkpoint t ~at
  | _ -> ()

(* Process an event that is already reception-stamped (and, when the WAL
   is live, already logged) — shared by delivery and recovery replay. *)
let process_stamped t ctx event =
  if String.equal event.Event.label rules_label && t.accept_rules then begin
    (match load_rules t event.Event.payload with
    | Ok () -> ()
    | Error e -> note_error t rules_label e);
    empty_outcome
  end
  else record t ~at:(Event.time event) (cascade t ctx event)

let receive_event t ctx event =
  if Hashtbl.mem t.seen_events event.Event.id then begin
    (* at-least-once delivery: a duplicated or replayed message must not
       fire rules twice *)
    Obs.Metrics.Counter.incr t.c_duplicates;
    empty_outcome
  end
  else begin
    Hashtbl.replace t.seen_events event.Event.id ();
    let stamped = Event.received event (ctx.now ()) in
    wal_append t (Wal.Event stamped);
    let outcome = process_stamped t ctx stamped in
    maybe_checkpoint t ~at:(ctx.now ());
    outcome
  end

let receive_get t ctx ~from ~req_id ~path ~kind =
  let doc =
    match kind with
    | Message.Doc -> Store.doc t.store path
    | Message.Rdf -> Option.map Rdf.graph_to_term (Store.rdf t.store path)
  in
  ctx.send
    (Message.make ~msg_id:(fresh_msg_id t) ~from_host:t.host ~to_host:from
       ~sent_at:(ctx.now ()) (Message.Response { req_id; doc }))

let expect_response t ~req_id handler =
  t.response_handlers <- (req_id, handler) :: t.response_handlers

let forget_response t ~req_id =
  t.response_handlers <- List.remove_assoc req_id t.response_handlers

let receive_response t ctx ~req_id doc =
  match List.assoc_opt req_id t.response_handlers with
  | None -> ()
  | Some handler ->
      t.response_handlers <- List.remove_assoc req_id t.response_handlers;
      handler doc (ctx.now ())

(* The accepted-update path, shared by delivery and recovery replay
   (acceptance and dedup checks already done, WAL record already
   appended when live). *)
let apply_remote t ctx ~from update =
  match Store.apply t.store update with
  | Error e ->
      note_error t "<remote-update>" e;
      empty_outcome
  | Ok (_, notifications) ->
      wal_append t (Wal.Update update);
      (* remote writes raise the same local update events as rule
         actions, so derived ECA rules see them too *)
      let outcome =
        List.fold_left
          (fun acc { Store.summary; _ } ->
            let ev =
              Event.make ~id:(fresh_event_id t) ~sender:from ~recipient:t.host
                ~occurred_at:(ctx.now ()) ~label:"update" summary
            in
            merge_outcomes acc (cascade t ctx ev))
          empty_outcome notifications
      in
      record t ~at:(ctx.now ()) outcome

let receive_update t ctx ~from ~msg_id update =
  if not t.accept_updates then begin
    note_error t "<remote-update>"
      (Fmt.str "rejected remote update of %s from %s" (Action.update_doc update) from);
    empty_outcome
  end
  else if Hashtbl.mem t.seen_updates (from, msg_id) then begin
    (* the update channel is idempotent like the event channel: identity
       is (sender, msg_id) *)
    Obs.Metrics.Counter.incr t.c_duplicates;
    empty_outcome
  end
  else begin
    Hashtbl.replace t.seen_updates (from, msg_id) ();
    let at = ctx.now () in
    wal_append t (Wal.Remote_update { from; msg_id; at; update });
    let outcome = apply_remote t ctx ~from update in
    maybe_checkpoint t ~at;
    outcome
  end

let advance_engine t ctx time =
  push_tail t (Wal.T_advance time) ~now:time;
  let pending = ref [] in
  let ops = ops_for t ctx pending in
  let outcome = Engine.advance t.engine ~env:ctx.env ~ops time in
  (* update events caused by timer firings cascade as usual *)
  let outcome =
    List.fold_left (fun acc e -> merge_outcomes acc (cascade t ctx e)) outcome !pending
  in
  record t ~at:time outcome

let advance t ctx time =
  wal_append t (Wal.Advance time);
  let outcome = advance_engine t ctx time in
  maybe_checkpoint t ~at:time;
  outcome

(* ------------------------------------------------------------------ *)
(* Crash and recovery *)

let crash t =
  t.wal_active <- false;
  (* the process dies: every piece of volatile state goes.  The id-lane
     counters are deliberately kept — an amnesic node (no WAL) must not
     re-mint ids its pre-crash events already carry, and a durable node
     overwrites them from the snapshot during recovery anyway. *)
  (match Store.load_snapshot t.store (Store.snapshot (Store.create ())) with
  | Ok () -> ()
  | Error e -> invalid_arg ("Node.crash: " ^ e));
  let fresh_event_id () =
    incr t.event_n;
    Event.scoped_id ~origin:t.lane ~n:!(t.event_n)
  in
  (match Engine.create ?horizon:t.horizon ~fresh_event_id t.ruleset0 with
  | Ok e -> t.engine <- e
  | Error e -> invalid_arg ("Node.crash: " ^ e));
  t.log_lines <- [];
  t.errors <- [];
  t.response_handlers <- [];
  Hashtbl.reset t.seen_events;
  Hashtbl.reset t.seen_updates;
  Istore.Dq.clear t.tail;
  t.n_firings <- 0

let noop_ops ~at =
  {
    Action.update = (fun _ -> Ok 0);
    txn_update = (fun _ -> Ok 0);
    send = (fun ~recipient:_ ~label:_ ~ttl:_ ~delay:_ _ -> ());
    log = (fun _ -> ());
    now = (fun () -> at);
    checkpoint = (fun () -> fun () -> ());
  }

let recover t ctx =
  match t.wal with
  | None -> Ok 0 (* volatile node: reboots amnesic, nothing to replay *)
  | Some w ->
      let rs, stop = Wal.records w in
      (* new appends after garbage bytes would be unreachable; cut the
         log back to its valid prefix before anything else *)
      (match stop with Wal.Clean -> () | Wal.Corrupt _ -> Wal.drop_corrupt_tail w);
      (* split at the last snapshot *)
      let pre, snap, post_rev =
        List.fold_left
          (fun (pre, snap, post) r ->
            match r with
            | Wal.Snapshot s -> (pre @ List.rev post, Some s, [])
            | r -> (pre, snap, r :: post))
          ([], None, []) rs
      in
      let post = List.rev post_rev in
      (* 1. reified rule sets learned before the snapshot are engine
         structure, not snapshot state: reload them into the fresh
         engine first (compaction keeps exactly these) *)
      if t.accept_rules then
        List.iter
          (function
            | Wal.Event e when String.equal e.Event.label rules_label -> (
                match load_rules t e.Event.payload with
                | Ok () -> ()
                | Error err -> note_error t rules_label err)
            | _ -> ())
          pre;
      (* 2. restore the snapshot baseline; the input tail re-primes the
         engine's composite-event state (with inert capabilities — its
         effects already happened), after which the id-lane counters and
         the firing count are pinned to their snapshot values, undoing
         the priming's re-allocations *)
      (match snap with
      | None -> ()
      | Some s ->
          (match Store.load_snapshot t.store s.Wal.s_store with
          | Ok () -> ()
          | Error err -> note_error t "<wal>" ("snapshot restore: " ^ err));
          List.iter (fun id -> Hashtbl.replace t.seen_events id ()) s.Wal.s_seen;
          List.iter (fun k -> Hashtbl.replace t.seen_updates k ()) s.Wal.s_seen_updates;
          t.log_lines <- s.Wal.s_logs;
          t.errors <- s.Wal.s_errors;
          let null_env = Condition.env_of_docs [] in
          List.iter
            (fun entry ->
              Istore.Dq.push_back t.tail entry;
              match entry with
              | Wal.T_event e ->
                  ignore
                    (Engine.handle_event t.engine ~env:null_env
                       ~ops:(noop_ops ~at:(Event.time e)) e)
              | Wal.T_advance tm ->
                  ignore (Engine.advance t.engine ~env:null_env ~ops:(noop_ops ~at:tm) tm))
            s.Wal.s_tail;
          t.event_n := s.Wal.s_event_n;
          t.msg_n := s.Wal.s_msg_n;
          t.req_n := s.Wal.s_req_n;
          t.n_firings <- s.Wal.s_firings);
      (match stop with
      | Wal.Clean -> ()
      | Wal.Corrupt reason ->
          note_error t "<wal>" (Fmt.str "log truncated at corruption: %s" reason));
      (* 3. logical replay of every input after the snapshot.  Sends are
         suppressed — the pre-crash transmissions are already in flight
         in the surviving network — but id allocation proceeds
         identically, so regenerated state matches what those messages
         refer to.  The clock is pinned to each record's original time
         so derived timestamps come out bit-identical. *)
      let now_cell = ref (match snap with Some s -> s.Wal.s_at | None -> Clock.origin) in
      let rctx = { env = ctx.env; send = (fun _ -> ()); now = (fun () -> !now_cell) } in
      let replayed = ref 0 in
      List.iter
        (fun r ->
          match r with
          | Wal.Event e ->
              incr replayed;
              now_cell := Event.time e;
              if not (Hashtbl.mem t.seen_events e.Event.id) then begin
                Hashtbl.replace t.seen_events e.Event.id ();
                ignore (process_stamped t rctx e)
              end
          | Wal.Remote_update { from; msg_id; at; update } ->
              incr replayed;
              now_cell := at;
              if not (Hashtbl.mem t.seen_updates (from, msg_id)) then begin
                Hashtbl.replace t.seen_updates (from, msg_id) ();
                ignore (apply_remote t rctx ~from update)
              end
          | Wal.Advance tm ->
              incr replayed;
              now_cell := tm;
              ignore (advance_engine t rctx tm)
          | Wal.Update _ | Wal.Firing _ ->
              (* audit records: logical replay re-derives the updates by
                 re-executing the inputs above *)
              ()
          | Wal.Snapshot _ -> ())
        post;
      t.wal_active <- true;
      (* fold the replayed suffix into a fresh baseline *)
      checkpoint t ~at:!now_cell;
      Ok !replayed

let logs t = List.rev t.log_lines
let firings t = t.n_firings
let errors t = List.rev t.errors
let duplicate_events t = Obs.Metrics.Counter.value t.c_duplicates
let metrics t = t.m
