open Xchange_data
open Xchange_query
open Xchange_event
open Xchange_rules
open Xchange_obs

let rules_label = "xchange:rules"
let max_cascade_depth = 32

type t = {
  host : string;
  store : Store.t;
  lane : int;
      (** the node's event-id origin lane ({!Event.fresh_origin}),
          allocated at creation time on the orchestrating domain so it
          is identical across sequential and sharded runs *)
  event_n : int ref;  (** lane-local event counter, shared with the engine *)
  msg_n : int ref;  (** per-node message sequence: a message's identity
                        is [(host, msg_n)] *)
  req_n : int ref;  (** per-node fetch request sequence; response
                        handlers are node-local, so uniqueness per
                        requester suffices *)
  mutable engine : Engine.t;
  horizon : Clock.span option;
  accept_rules : bool;
  mutable decoder : (Term.t -> (Ruleset.t, string) result) option;
  mutable log_lines : string list;  (** newest first *)
  m : Obs.Metrics.t;
  c_firings : Obs.Metrics.Counter.t;
  c_duplicates : Obs.Metrics.Counter.t;
  mutable errors : (string * string) list;
  accept_updates : bool;
  mutable response_handlers : (int * (Term.t option -> Clock.time -> unit)) list;
  seen_events : (int, unit) Hashtbl.t;
      (** ids of network events already processed — the idempotent
          receiver making at-least-once delivery (duplicated messages,
          retried sends) safe *)
}

type context = {
  env : Condition.env;
  send : Message.t -> unit;
  now : unit -> Clock.time;
}

let create ?horizon ?(accept_rules = false) ?(accept_updates = false) ~host ruleset =
  let lane = Event.fresh_origin () in
  let event_n = ref 0 in
  let fresh_event_id () =
    incr event_n;
    Event.scoped_id ~origin:lane ~n:!event_n
  in
  match Engine.create ?horizon ~fresh_event_id ruleset with
  | Error e -> Error e
  | Ok engine ->
      let m = Obs.Metrics.create () in
      let t =
        {
          host;
          store = Store.create ();
          lane;
          event_n;
          msg_n = ref 0;
          req_n = ref 0;
          engine;
          horizon;
          accept_rules;
          accept_updates;
          decoder = None;
          log_lines = [];
          m;
          c_firings = Obs.Metrics.counter m "node.firings";
          c_duplicates = Obs.Metrics.counter m "node.duplicate_events";
          errors = [];
          response_handlers = [];
          seen_events = Hashtbl.create 64;
        }
      in
      Obs.Metrics.counter_fn m "node.rule_errors" (fun () -> List.length t.errors);
      Ok t

let create_exn ?horizon ?accept_rules ?accept_updates ~host ruleset =
  match create ?horizon ?accept_rules ?accept_updates ~host ruleset with
  | Ok t -> t
  | Error e -> invalid_arg ("Node.create: " ^ e)

let host t = t.host
let store t = t.store
let engine t = t.engine

let fresh_event_id t =
  incr t.event_n;
  Event.scoped_id ~origin:t.lane ~n:!(t.event_n)

let fresh_msg_id t =
  incr t.msg_n;
  !(t.msg_n)

let fresh_req_id t =
  incr t.req_n;
  !(t.req_n)
let set_rule_decoder t decoder = t.decoder <- Some decoder

let note_error t rule msg = t.errors <- (rule, msg) :: t.errors

(* Build the action capabilities for one processing step; update
   notifications accumulate in [pending] as local events. *)
let ops_for t ctx pending =
  {
    Action.update =
      (fun u ->
        let target = Action.update_doc u in
        let target_host = Uri.host target in
        if target_host <> "" && not (String.equal target_host t.host) then begin
          (* a remote resource: ship the update to its owner (Thesis 8:
             updates of Web resources anywhere; asynchronous, reported as
             one affected node) *)
          let u = Action.with_update_doc u (Uri.path target) in
          ctx.send
            (Message.make ~msg_id:(fresh_msg_id t) ~from_host:t.host ~to_host:target_host
               ~sent_at:(ctx.now ()) (Message.Update u));
          Ok 1
        end
        else
        match Store.apply t.store u with
        | Error e -> Error e
        | Ok (n, notifications) ->
            List.iter
              (fun { Store.summary; _ } ->
                let ev =
                  Event.make ~id:(fresh_event_id t) ~sender:t.host ~recipient:t.host
                    ~occurred_at:(ctx.now ()) ~label:"update" summary
                in
                pending := !pending @ [ ev ])
              notifications;
            Ok n);
    send =
      (fun ~recipient ~label ~ttl ~delay payload ->
        let to_host = Uri.host recipient in
        let to_host = if to_host = "" then t.host else to_host in
        let departs = Clock.add (ctx.now ()) (Option.value ~default:0 delay) in
        let event =
          Event.make ~id:(fresh_event_id t) ~sender:t.host ~recipient ~occurred_at:departs
            ?ttl ~label payload
        in
        ctx.send
          (Message.make ~msg_id:(fresh_msg_id t) ~from_host:t.host ~to_host ~sent_at:departs
             (Message.Event event)));
    log = (fun line -> t.log_lines <- line :: t.log_lines);
    now = ctx.now;
    checkpoint =
      (fun () ->
        let b = Store.backup t.store in
        let saved_pending = !pending in
        fun () ->
          Store.rollback t.store b;
          (* rolled-back writes must not cascade update events either *)
          pending := saved_pending);
  }

let merge_outcomes (a : Engine.outcome) (b : Engine.outcome) =
  {
    Engine.firings = a.Engine.firings @ b.Engine.firings;
    derived_events = a.Engine.derived_events @ b.Engine.derived_events;
    errors = a.Engine.errors @ b.Engine.errors;
  }

let empty_outcome = { Engine.firings = []; derived_events = []; errors = [] }

let record t (outcome : Engine.outcome) =
  Obs.Metrics.Counter.incr ~by:(List.length outcome.Engine.firings) t.c_firings;
  t.errors <- List.rev_append outcome.Engine.errors t.errors;
  outcome

(* Run the engine on an event, then on the local update events its
   actions produced, and so on — bounded. *)
let cascade t ctx first =
  let pending = ref [ first ] in
  let ops = ops_for t ctx pending in
  let rec go depth acc =
    match !pending with
    | [] -> acc
    | e :: rest ->
        pending := rest;
        if depth > max_cascade_depth then begin
          note_error t "<cascade>" "update cascade exceeded maximum depth";
          acc
        end
        else
          let outcome = Engine.handle_event t.engine ~env:ctx.env ~ops e in
          go (depth + 1) (merge_outcomes acc outcome)
  in
  go 0 empty_outcome

let load_rules t payload =
  match t.decoder with
  | None -> Error "no rule decoder installed"
  | Some decode -> (
      match decode payload with
      | Error e -> Error e
      | Ok ruleset -> (
          match Engine.load_ruleset t.engine ruleset with
          | Error e -> Error e
          | Ok engine ->
              t.engine <- engine;
              Ok ()))

let receive_event t ctx event =
  if Hashtbl.mem t.seen_events event.Event.id then begin
    (* at-least-once delivery: a duplicated or replayed message must not
       fire rules twice *)
    Obs.Metrics.Counter.incr t.c_duplicates;
    empty_outcome
  end
  else begin
    Hashtbl.replace t.seen_events event.Event.id ();
    if String.equal event.Event.label rules_label && t.accept_rules then begin
      (match load_rules t event.Event.payload with
      | Ok () -> ()
      | Error e -> note_error t rules_label e);
      empty_outcome
    end
    else record t (cascade t ctx (Event.received event (ctx.now ())))
  end

let receive_get t ctx ~from ~req_id ~path ~kind =
  let doc =
    match kind with
    | Message.Doc -> Store.doc t.store path
    | Message.Rdf -> Option.map Rdf.graph_to_term (Store.rdf t.store path)
  in
  ctx.send
    (Message.make ~msg_id:(fresh_msg_id t) ~from_host:t.host ~to_host:from
       ~sent_at:(ctx.now ()) (Message.Response { req_id; doc }))

let expect_response t ~req_id handler =
  t.response_handlers <- (req_id, handler) :: t.response_handlers

let forget_response t ~req_id =
  t.response_handlers <- List.remove_assoc req_id t.response_handlers

let receive_response t ctx ~req_id doc =
  match List.assoc_opt req_id t.response_handlers with
  | None -> ()
  | Some handler ->
      t.response_handlers <- List.remove_assoc req_id t.response_handlers;
      handler doc (ctx.now ())

let receive_update t ctx ~from update =
  if not t.accept_updates then begin
    note_error t "<remote-update>"
      (Fmt.str "rejected remote update of %s from %s" (Action.update_doc update) from);
    empty_outcome
  end
  else
    match Store.apply t.store update with
    | Error e ->
        note_error t "<remote-update>" e;
        empty_outcome
    | Ok (_, notifications) ->
        (* remote writes raise the same local update events as rule
           actions, so derived ECA rules see them too *)
        let outcome =
          List.fold_left
            (fun acc { Store.summary; _ } ->
              let ev =
                Event.make ~id:(fresh_event_id t) ~sender:from ~recipient:t.host
                  ~occurred_at:(ctx.now ()) ~label:"update" summary
              in
              merge_outcomes acc (cascade t ctx ev))
            empty_outcome notifications
        in
        record t outcome

let advance t ctx time =
  let pending = ref [] in
  let ops = ops_for t ctx pending in
  let outcome = Engine.advance t.engine ~env:ctx.env ~ops time in
  (* update events caused by timer firings cascade as usual *)
  let outcome =
    List.fold_left (fun acc e -> merge_outcomes acc (cascade t ctx e)) outcome !pending
  in
  record t outcome

let logs t = List.rev t.log_lines
let firings t = Obs.Metrics.Counter.value t.c_firings
let errors t = List.rev t.errors
let duplicate_events t = Obs.Metrics.Counter.value t.c_duplicates
let metrics t = t.m
