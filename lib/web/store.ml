open Xchange_data
open Xchange_query
open Xchange_rules
open Xchange_obs

type notification = { doc : string; summary : Term.t }

type watch_state =
  | Surrogate of { w_doc : string; oid : int; mutable last_digest : int64 }
  | Extensional of { w_doc : string; value : Term.t }

(* The query cache key: the document's extensional digest (captured by
   its term index), the query term itself, and a digest fingerprint of
   the seed substitution.  Keying by the full seed keeps cached answers
   byte-for-byte those of a fresh evaluation — optional and negated
   subpatterns make seeded matching irreducible to joining unseeded
   answers.  Stale digests age out of the LRU by themselves. *)
type query_key = int64 * Qterm.t * (string * int64) list

type change = Ch_update of Action.update | Ch_doc of string | Ch_restore

type answerer = seed:Subst.t -> Qterm.t -> Subst.set option

type t = {
  docs : (string, Term.t) Hashtbl.t;
  graphs : (string, Rdf.graph) Hashtbl.t;
  watches : (int, watch_state) Hashtbl.t;
  mutable next_watch : int;
  indexes : (string, Term_index.t) Hashtbl.t;  (** per current doc version *)
  qcache : (query_key, Subst.set) Lru.t;
  mutable observers : (change -> unit) list;
  dynamic : (string, answerer) Hashtbl.t;  (** per-doc derived-register answerers *)
  m : Obs.Metrics.t;
  c_index_builds : Obs.Metrics.Counter.t;
  c_index_invalidations : Obs.Metrics.Counter.t;
  c_indexed_selects : Obs.Metrics.Counter.t;
  c_dynamic_answers : Obs.Metrics.Counter.t;
}

type watch_id = int

let default_cache_capacity = 512

let create ?(cache_capacity = default_cache_capacity) () =
  let m = Obs.Metrics.create () in
  let t =
    {
      docs = Hashtbl.create 16;
      graphs = Hashtbl.create 4;
      watches = Hashtbl.create 8;
      next_watch = 0;
      indexes = Hashtbl.create 16;
      qcache = Lru.create ~cap:cache_capacity;
      observers = [];
      dynamic = Hashtbl.create 4;
      m;
      c_index_builds = Obs.Metrics.counter m "store.index_builds";
      c_index_invalidations = Obs.Metrics.counter m "store.index_invalidations";
      c_indexed_selects = Obs.Metrics.counter m "store.indexed_selects";
      c_dynamic_answers = Obs.Metrics.counter m "store.dynamic_answers";
    }
  in
  (* the LRU already counts its own traffic; sample it at snapshot time
     instead of double-counting on the query hot path *)
  Obs.Metrics.counter_fn m "store.query_cache_hits" (fun () -> Lru.hits t.qcache);
  Obs.Metrics.counter_fn m "store.query_cache_misses" (fun () -> Lru.misses t.qcache);
  Obs.Metrics.counter_fn m "store.query_cache_evictions" (fun () -> Lru.evictions t.qcache);
  Obs.Metrics.gauge_fn m "store.query_cache_entries" (fun () ->
      float_of_int (Lru.length t.qcache));
  Obs.Metrics.gauge_fn m "store.live_indexes" (fun () ->
      float_of_int (Hashtbl.length t.indexes));
  t

let metrics t = t.m

let on_change t f = t.observers <- t.observers @ [ f ]

let fire t ch = List.iter (fun f -> f ch) t.observers

let set_dynamic t name answer = Hashtbl.replace t.dynamic name answer
let clear_dynamic t name = Hashtbl.remove t.dynamic name

(* Every document mutation drops the document's index; cached query
   answers need no eager flush because their keys embed the digest of
   the version they were computed on. *)
let invalidate_index t name =
  if Hashtbl.mem t.indexes name then begin
    Hashtbl.remove t.indexes name;
    Obs.Metrics.Counter.incr t.c_index_invalidations
  end

let existing_index t name = Hashtbl.find_opt t.indexes name

let index_for t name =
  match Hashtbl.find_opt t.indexes name with
  | Some idx -> Some idx
  | None -> (
      match Hashtbl.find_opt t.docs name with
      | None -> None
      | Some d ->
          let idx = Term_index.build d in
          Obs.Metrics.Counter.incr t.c_index_builds;
          Hashtbl.replace t.indexes name idx;
          Some idx)

let add_doc t name d =
  invalidate_index t name;
  Hashtbl.replace t.docs name (Identity.assign d);
  fire t (Ch_doc name)

let doc t name = Hashtbl.find_opt t.docs name
let doc_names t = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.docs [])

let remove_doc t name =
  if Hashtbl.mem t.docs name then begin
    Hashtbl.remove t.docs name;
    invalidate_index t name;
    fire t (Ch_doc name);
    true
  end
  else false

let add_rdf t name g = Hashtbl.replace t.graphs name g
let rdf t name = Hashtbl.find_opt t.graphs name
let rdf_names t = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.graphs [])

let notify doc kind count = { doc; summary = Term.elem "update" ~attrs:[ ("doc", doc); ("kind", kind) ] [ Term.int count ] }

(* Apply a path-wise rewrite to every selected node, deepest/last paths
   first so earlier rewrites do not invalidate later paths.  When the
   document still has a live term index, descendant/tag selector steps
   prune through it instead of traversing. *)
let rewrite_selected ?index d selector f =
  let label_paths = Option.map (fun idx l -> Term_index.paths_with_label idx l) index in
  let selected = Path.select ?label_paths d selector in
  let ordered = List.sort (fun (a, _) (b, _) -> Stdlib.compare b a) selected in
  List.fold_left
    (fun (d, n) (path, node) ->
      match f d path node with Some d' -> (d', n + 1) | None -> (d, n))
    (d, 0) ordered

let get_doc t name =
  match Hashtbl.find_opt t.docs name with
  | Some d -> Ok d
  | None -> Error (Fmt.str "no such document: %s" name)

let ( let* ) = Result.bind

(* The index of the document's current version, for selector pruning
   inside updates: use it if a query already built it, but do not build
   one just for a mutation that is about to invalidate it. *)
let update_index t name =
  match existing_index t name with
  | Some idx ->
      Obs.Metrics.Counter.incr t.c_indexed_selects;
      Some idx
  | None -> None

let apply_update t (update : Action.update) =
  match update with
  | Action.U_insert { doc = name; selector; at; content } ->
      let* d = get_doc t name in
      let content = Identity.assign content in
      let d', n =
        rewrite_selected ?index:(update_index t name) d selector (fun d path _node ->
            Path.insert_child ?at d path content)
      in
      if n = 0 then Error (Fmt.str "insert: selector matched nothing in %s" name)
      else begin
        Hashtbl.replace t.docs name d';
        invalidate_index t name;
        Ok (n, [ notify name "insert" n ])
      end
  | Action.U_delete { doc = name; selector; pattern } ->
      let* d = get_doc t name in
      let index = update_index t name in
      let d', n =
        match pattern with
        | None -> rewrite_selected ?index d selector (fun d path _ -> Path.delete d path)
        | Some q ->
            rewrite_selected ?index d selector (fun d path node ->
                (* delete children of the selected node matching q *)
                let doomed =
                  List.mapi (fun i c -> (i, c)) (Term.children node)
                  |> List.filter (fun (_, c) -> Simulate.holds q c)
                  |> List.rev_map (fun (i, _) -> path @ [ i ])
                in
                if doomed = [] then None
                else
                  List.fold_left
                    (fun acc p -> match acc with Some d -> Path.delete d p | None -> None)
                    (Some d) doomed)
      in
      Hashtbl.replace t.docs name d';
      if n > 0 then invalidate_index t name;
      Ok (n, if n = 0 then [] else [ notify name "delete" n ])
  | Action.U_replace { doc = name; selector; content } ->
      let* d = get_doc t name in
      let d', n =
        rewrite_selected ?index:(update_index t name) d selector (fun d path node ->
            (* the replacement inherits the replaced element's surrogate
               identity (Thesis 10) *)
            let keep_oid = Term.elem_id node in
            let content = Term.with_id keep_oid (Identity.assign content) in
            Path.replace d path content)
      in
      if n = 0 then Error (Fmt.str "replace: selector matched nothing in %s" name)
      else begin
        Hashtbl.replace t.docs name d';
        invalidate_index t name;
        Ok (n, [ notify name "replace" n ])
      end
  | Action.U_create_doc { doc = name; content } ->
      add_doc t name content;
      Ok (1, [ notify name "create" 1 ])
  | Action.U_delete_doc { doc = name } ->
      if remove_doc t name then Ok (1, [ notify name "drop" 1 ])
      else Error (Fmt.str "no such document: %s" name)
  | Action.U_rdf_assert { doc = name; triple } ->
      let g =
        match Hashtbl.find_opt t.graphs name with
        | Some g -> g
        | None ->
            let g = Rdf.create () in
            Hashtbl.replace t.graphs name g;
            g
      in
      let added = Rdf.add g triple in
      Ok ((if added then 1 else 0), if added then [ notify name "assert" 1 ] else [])
  | Action.U_rdf_retract { doc = name; triple } -> (
      match Hashtbl.find_opt t.graphs name with
      | None -> Error (Fmt.str "no such graph: %s" name)
      | Some g ->
          let removed = Rdf.remove g triple in
          Ok ((if removed then 1 else 0), if removed then [ notify name "retract" 1 ] else []))

(* Observers see only updates that changed something; an error or a
   pattern-delete touching zero nodes leaves every derived view valid. *)
let apply t update =
  match apply_update t update with
  | Ok (n, _) as ok ->
      if n > 0 then fire t (Ch_update update);
      ok
  | Error _ as e -> e

let replace_at t ~doc:name path content =
  let* d = get_doc t name in
  match Path.get d path with
  | None -> Error (Fmt.str "no node at %a in %s" Path.pp path name)
  | Some node -> (
      let keep_oid = Term.elem_id node in
      let content = Term.with_id keep_oid (Identity.assign content) in
      match Path.replace d path content with
      | Some d' ->
          Hashtbl.replace t.docs name d';
          invalidate_index t name;
          fire t (Ch_doc name);
          Ok ()
      | None -> Error (Fmt.str "cannot replace at %a in %s" Path.pp path name))

let seed_fingerprint seed =
  List.map (fun (v, term) -> (v, Term.digest term)) (Subst.to_list seed)

let query_fallback t name d ~seed q =
  match index_for t name with
  | None -> Simulate.matches_anywhere ~seed q d
  | Some idx -> (
      let key = (Term_index.digest idx, q, seed_fingerprint seed) in
      match Lru.find t.qcache key with
      | Some answers -> answers
      | None ->
          let answers = Simulate.matches_anywhere ~index:idx ~seed q d in
          Lru.add t.qcache key answers;
          answers)

let query t ~doc:name ?(seed = Subst.empty) q =
  match Hashtbl.find_opt t.docs name with
  | None -> Subst.set_empty
  | Some d -> (
      (* a dynamic answerer (e.g. Pubsub's subscription index) may serve
         the query straight from its own structure; [None] falls back to
         the document — the answerer contract is answer-equivalence *)
      match Hashtbl.find_opt t.dynamic name with
      | Some answer -> (
          match answer ~seed q with
          | Some answers ->
              Obs.Metrics.Counter.incr t.c_dynamic_answers;
              answers
          | None -> query_fallback t name d ~seed q)
      | None -> query_fallback t name d ~seed q)

let env t =
  let fetch = function
    | Condition.Local name -> Option.to_list (doc t name)
    | Condition.Remote uri -> Option.to_list (doc t (Uri.path uri))
    | Condition.View _ -> []
  in
  let fetch_rdf = function
    | Condition.Local name -> rdf t name
    | Condition.Remote uri -> rdf t (Uri.path uri)
    | Condition.View _ -> None
  in
  let cached_match res ~seed q =
    match res with
    | Condition.Local name -> Some (query t ~doc:name ~seed q)
    | Condition.Remote uri -> Some (query t ~doc:(Uri.path uri) ~seed q)
    | Condition.View _ -> None
  in
  { Condition.fetch; fetch_rdf; cached_match }

type backup = { b_docs : (string * Term.t) list; b_graphs : (string * Rdf.graph) list }

let backup t =
  {
    b_docs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.docs [];
    b_graphs = Hashtbl.fold (fun k v acc -> (k, Rdf.copy v) :: acc) t.graphs [];
  }

let rollback t b =
  Obs.Metrics.Counter.incr ~by:(Hashtbl.length t.indexes) t.c_index_invalidations;
  Hashtbl.reset t.indexes;
  Hashtbl.reset t.docs;
  List.iter (fun (k, v) -> Hashtbl.replace t.docs k v) b.b_docs;
  Hashtbl.reset t.graphs;
  List.iter (fun (k, v) -> Hashtbl.replace t.graphs k v) b.b_graphs;
  fire t Ch_restore

(* All-or-nothing multi-update (Thesis 10's transactional face at the
   store level): either every mutation applies — observers then see the
   per-update changes, in order — or none does and observers see a
   single [Ch_restore].  Reads between the updates of one batch see the
   earlier writes (same optimistic discipline as [Action.Atomic]). *)
let apply_txn t updates =
  match updates with
  | [] -> Ok (0, [])
  | _ ->
      let b = backup t in
      let rec go i total notes changed = function
        | [] ->
            List.iter (fun u -> fire t (Ch_update u)) (List.rev changed);
            Ok (total, List.concat (List.rev notes))
        | u :: rest -> (
            match apply_update t u with
            | Ok (n, ns) ->
                go (i + 1) (total + n) (ns :: notes)
                  (if n > 0 then u :: changed else changed)
                  rest
            | Error e ->
                rollback t b;
                Error (Fmt.str "transaction rolled back at update %d: %s" i e))
      in
      go 1 0 [] [] updates

let snapshot t =
  let docs =
    List.map
      (fun name ->
        Term.elem "document" ~attrs:[ ("name", name) ] [ Term.strip_ids (Option.get (doc t name)) ])
      (doc_names t)
  in
  let graphs =
    List.map
      (fun name ->
        Term.elem "graph" ~attrs:[ ("name", name) ] [ Rdf.graph_to_term (Option.get (rdf t name)) ])
      (rdf_names t)
  in
  Term.elem ~ord:Term.Unordered "store" (docs @ graphs)

(* Parse a snapshot term into its documents and graphs without touching
   any store, so an in-place load can validate fully before wiping. *)
let parse_snapshot term =
  match term with
  | Term.Elem { Term.label = "store"; children; _ } ->
      let rec load docs graphs = function
        | [] -> Ok (List.rev docs, List.rev graphs)
        | Term.Elem { Term.label = "document"; attrs; children = [ d ]; _ } :: rest -> (
            match List.assoc_opt "name" attrs with
            | Some name -> load ((name, d) :: docs) graphs rest
            | None -> Error "document snapshot lacks a name")
        | Term.Elem { Term.label = "graph"; attrs; children = [ g ]; _ } :: rest -> (
            match (List.assoc_opt "name" attrs, Rdf.graph_of_term g) with
            | Some name, Ok graph -> load docs ((name, graph) :: graphs) rest
            | None, _ -> Error "graph snapshot lacks a name"
            | _, Error e -> Error e)
        | other :: _ -> Error (Fmt.str "unexpected snapshot entry: %a" Term.pp other)
      in
      load [] [] children
  | _ -> Error (Fmt.str "not a store snapshot: %a" Term.pp term)

(* In-place restore (recovery): replace the whole contents with the
   snapshot's.  Validates first — a bad snapshot leaves the store
   untouched.  Observers see one [Ch_restore], like [rollback]. *)
let load_snapshot t term =
  match parse_snapshot term with
  | Error _ as e -> e
  | Ok (docs, graphs) ->
      Obs.Metrics.Counter.incr ~by:(Hashtbl.length t.indexes) t.c_index_invalidations;
      Hashtbl.reset t.indexes;
      Hashtbl.reset t.docs;
      Hashtbl.reset t.graphs;
      List.iter (fun (name, d) -> Hashtbl.replace t.docs name (Identity.assign d)) docs;
      List.iter (fun (name, g) -> Hashtbl.replace t.graphs name g) graphs;
      fire t Ch_restore;
      Ok ()

let restore term =
  let t = create () in
  match load_snapshot t term with Ok () -> Ok t | Error e -> Error e

let fresh_watch t state =
  t.next_watch <- t.next_watch + 1;
  Hashtbl.replace t.watches t.next_watch state;
  t.next_watch

let watch_surrogate t ~doc:name path =
  let* d = get_doc t name in
  match Path.get d path with
  | None -> Error (Fmt.str "no node at %a in %s" Path.pp path name)
  | Some node ->
      let oid = Term.elem_id node in
      if oid = Term.no_id then Error "node has no surrogate identity (not an element)"
      else Ok (fresh_watch t (Surrogate { w_doc = name; oid; last_digest = Term.digest node }))

let watch_extensional t ~doc:name value =
  let* d = get_doc t name in
  if Identity.find_equal d value = [] then
    Error (Fmt.str "value does not occur in %s" name)
  else Ok (fresh_watch t (Extensional { w_doc = name; value }))

type watch_status = [ `Unchanged | `Changed of Term.t | `Lost ]

let poll_watch t id : watch_status =
  match Hashtbl.find_opt t.watches id with
  | None -> `Lost
  | Some (Surrogate s) -> (
      match doc t s.w_doc with
      | None -> `Lost
      | Some d -> (
          match Identity.find_by_id d s.oid with
          | None -> `Lost
          | Some path -> (
              match Path.get d path with
              | None -> `Lost
              | Some node ->
                  let dg = Term.digest node in
                  if Int64.equal dg s.last_digest then `Unchanged
                  else begin
                    s.last_digest <- dg;
                    `Changed node
                  end)))
  | Some (Extensional e) -> (
      match doc t e.w_doc with
      | None -> `Lost
      | Some d -> if Identity.find_equal d e.value = [] then `Lost else `Unchanged)

let watch_count t = Hashtbl.length t.watches

type stats = {
  query_cache_hits : int;
  query_cache_misses : int;
  query_cache_evictions : int;
  query_cache_entries : int;
  index_builds : int;
  index_invalidations : int;
  live_indexes : int;
  indexed_selects : int;
}

let stats t =
  {
    query_cache_hits = Lru.hits t.qcache;
    query_cache_misses = Lru.misses t.qcache;
    query_cache_evictions = Lru.evictions t.qcache;
    query_cache_entries = Lru.length t.qcache;
    index_builds = Obs.Metrics.Counter.value t.c_index_builds;
    index_invalidations = Obs.Metrics.Counter.value t.c_index_invalidations;
    live_indexes = Hashtbl.length t.indexes;
    indexed_selects = Obs.Metrics.Counter.value t.c_indexed_selects;
  }

let index t name = index_for t name
