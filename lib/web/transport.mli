open Xchange_event
open Xchange_obs

(** Point-to-point message transport (Thesis 3).

    Messages travel directly between nodes — no broker, no super-peer.
    The transport owns no clock and no queue of its own: every send is
    scheduled as a {e holding} occurrence on the owning {!Sched}
    timeline at [departure + latency(from, to) + jitter], and the
    delivery callback installed with {!on_deliver} runs when the
    scheduler reaches that instant.  The transport keeps the traffic
    statistics (messages, bytes, per-kind counts) that experiments
    E2/E3 report, and is where network degradation is injected: message
    loss, duplication, and jitter-induced reordering (E2/E3/E10
    robustness profiles).

    Under domain sharding each partition owns one transport.  A send
    whose destination lives on another partition is intercepted by the
    {!on_handoff} hook and re-scheduled on the destination's timeline
    via {!inject}; delivery order is governed by the message's sender
    stamp [(from_host, msg_id, dup)] in both cases, so the merged
    execution is bit-identical to the single-timeline run. *)

(** Legacy view: {!stats} builds this record from the transport's
    {!Obs.Metrics} registry cells at call time (a snapshot, not a live
    reference). *)
type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable events : int;
  mutable gets : int;
  mutable responses : int;
  mutable updates : int;
  mutable dropped : int;
  mutable duplicated : int;  (** extra copies injected by the fault profile *)
}

(** Fault-injection knobs.  All three are deterministic functions of the
    message (typically of its [(from_host, msg_id)] identity), so
    degraded runs replay bit-for-bit — on one timeline or many. *)
type faults = {
  drop : Message.t -> bool;  (** lose the message after accounting it *)
  duplicate : Message.t -> bool;  (** deliver a second copy later *)
  jitter : Message.t -> Clock.span;  (** extra delay on top of the link
                                         latency; enough jitter reorders
                                         messages between the same pair
                                         of hosts *)
}

val no_faults : faults

val fault_profile :
  ?seed:int ->
  ?drop_rate:float ->
  ?dup_rate:float ->
  ?max_jitter:Clock.span ->
  unit ->
  faults
(** A deterministic pseudo-random profile: each message's fate is a hash
    of [(seed, from_host, msg_id)].  Rates are probabilities in [0, 1];
    jitter is uniform in [0, max_jitter].  Keying on the sender stamp
    rather than global allocation order keeps a message's fate identical
    across sequential and sharded runs. *)

type t

type handoff = Message.t -> dup:int -> at:Clock.time -> release:(unit -> unit) -> bool
(** A cross-partition routing hook: return [true] to take ownership of
    the delivery copy (the taker must eventually {!inject} it on the
    destination transport and call [release] when it fires), [false] to
    let the local timeline schedule it. *)

val create :
  sched:Sched.t ->
  ?latency:(from:string -> to_:string -> Clock.span) ->
  ?drop:(Message.t -> bool) ->
  ?faults:faults ->
  ?record:bool ->
  unit ->
  t
(** [latency] defaults to a constant 5 ms.  [drop] is a convenience
    alias for a faults profile with only message loss (both are applied
    if given: dropped messages are accounted in the statistics — they
    were sent — but never delivered, the failure mode absence rules and
    fetch retries compensate for).  With [record] (default false),
    every message is kept for {!trace}. *)

val on_deliver : t -> (Message.t -> unit) -> unit
(** Install the delivery callback (the network layer's dispatcher).
    Must be set before the first scheduled delivery fires. *)

val on_handoff : t -> handoff -> unit
(** Install the cross-partition routing hook (absent by default: all
    deliveries schedule on the local timeline). *)

val send : t -> Message.t -> unit
(** Account the message and schedule its delivery occurrence(s) at
    [max sent_at now + latency + jitter]. *)

val inject : t -> Message.t -> dup:int -> at:Clock.time -> release:(unit -> unit) -> unit
(** Schedule a delivery copy handed off by another partition's
    transport on {e this} transport's timeline at [at], ranked by the
    message's sender stamp.  [release] is the sender's in-flight
    accounting hook, called when the delivery fires. *)

val pending : t -> int
(** Messages sent but not yet delivered (dropped ones excluded). *)

val stats : t -> stats

val merge_stats : stats list -> stats
(** Field-wise sum — the whole-network view over per-partition
    transports. *)

val metrics : t -> Obs.Metrics.t
(** The transport's registry: [transport.messages], [transport.bytes],
    the per-kind counts, [transport.dropped] / [transport.duplicated],
    and the pull gauge [transport.in_flight].  When tracing is on
    ({!Obs.set_enabled}), every send also emits a [send] span and the
    delivery occurrence runs under it, so causality survives in-flight
    time. *)

val body_kind : Message.t -> string
(** ["event"] / ["get"] / ["response"] / ["update"] — the per-kind
    metric and span label. *)

val latency : t -> from:string -> to_:string -> Clock.span

val trace : t -> Message.t list
(** All recorded messages in send order ([] unless created with
    [record]). *)
