(** The simulated Web: nodes + transports + one or more {!Sched}
    timelines.

    A deterministic discrete-event simulation.  Everything that happens
    later — message deliveries, polling tickers, engine heartbeats,
    rule-timer deadlines, fetch timeouts — is an occurrence on a
    scheduler queue, executed in [(time, rank)] order.  Determinism is
    what lets every experiment in EXPERIMENTS.md be re-run bit-for-bit,
    including runs with fault injection (drops, duplicates, jitter):
    message fates are deterministic functions of sender-stamped message
    identities (see {!Transport.fault_profile}).

    {b Multicore.}  The network can shard its hosts across OCaml 5
    domains ([?domains], default from [XCHANGE_DOMAINS]): each
    partition owns a private timeline and transport and advances
    through {e conservative lookahead windows} (see {!Partition}),
    exchanging cross-partition messages at barriers.  Delivery order is
    governed by sender stamps in every mode, so the partitioned run is
    {e bit-identical} to the sequential one — the sequential path
    ([~domains:1], or [XCHANGE_NO_PAR=1]) is the differential oracle.
    Between driver calls ({!run} / {!run_until_quiet}) all partition
    clocks agree and every structure may be inspected freely; user
    callbacks (tickers, fetch continuations) run on the owning
    partition's domain and must only touch that host's state.

    Remote condition queries ([Condition.Remote uri]) are {e real}
    asynchronous Get/Response round-trips.  Because the resources a
    rule set can touch are statically known
    ({!Xchange_rules.Engine.remote_resources}), the network prefetches
    them when an event or update message arrives and defers the
    node's reaction until the round-trips complete — so "access
    persistent data from anywhere on the Web" (Thesis 2) pays its true
    latency and traffic cost, and survives lost Responses by retrying
    (see {!fetch_policy}). *)

open Xchange_data
open Xchange_event
open Xchange_obs

type t

(** Retry-with-timeout policy for remote fetches.  A round-trip whose
    Response has not arrived after [timeout] is retried (a fresh Get
    with a fresh request id) up to [retries] times before giving up
    and answering the pending condition with "no document". *)
type fetch_policy = { timeout : Clock.span; retries : int }

val default_fetch_policy : fetch_policy
(** [{ timeout = 60; retries = 2 }] — generous against the default
    5 ms link latency, tight enough that tests stay fast. *)

(** Legacy per-node view: {!node_stats} builds this record from the
    network's {!Obs.Metrics} registry cells at call time (a snapshot,
    not a live reference). *)
type node_stats = {
  mutable events_in : int;  (** event messages delivered to this node *)
  mutable gets_in : int;
  mutable responses_in : int;
  mutable updates_in : int;
  mutable deferred_events : int;
      (** deliveries held back behind remote prefetch round-trips *)
  mutable fetches : int;  (** round-trips started by this node *)
  mutable fetch_retries : int;
  mutable fetch_timeouts : int;  (** round-trips abandoned after retries *)
  mutable fetches_completed : int;
  mutable fetch_latency_total : Clock.span;
      (** summed request-to-response time of completed fetches *)
  mutable fetch_latency_max : Clock.span;
}

exception Causality of string
(** Raised when a cross-partition delivery lands behind its destination
    clock — only possible when an explicit [?lookahead] overstates a
    link latency.  The derived default can never trip it. *)

val create :
  ?latency:(from:string -> to_:string -> Clock.span) ->
  ?drop:(Message.t -> bool) ->
  ?faults:Transport.faults ->
  ?record:bool ->
  ?fetch_policy:fetch_policy ->
  ?domains:int ->
  ?lookahead:Clock.span ->
  unit ->
  t
(** [drop] injects message loss; [faults] is the full fault profile
    (loss, duplication, jitter — see {!Transport.fault_profile});
    [record] keeps a full message trace (see {!trace}).

    [domains] (default: [XCHANGE_DOMAINS], else 1) is the number of
    scheduler partitions; hosts are assigned by {!Partition.owner}.
    [XCHANGE_NO_PAR=1] forces 1 whatever is requested.  More partitions
    than hosts is harmless (the extras idle).  [lookahead] overrides
    the conservative window width, normally derived as the minimum
    cross-partition link latency; overstating it raises {!Causality}. *)

val add_node : t -> Node.t -> (unit, string) result
(** [Error] when a node with the same host name is already attached. *)

val add_node_exn : t -> Node.t -> unit

val node : t -> string -> Node.t option
val node_exn : t -> string -> Node.t
val hosts : t -> string list

val partitions : t -> int
(** Number of scheduler partitions (1 = sequential). *)

val clock : t -> Clock.time
(** The simulation clock.  Between driver calls every partition's clock
    agrees; this reads partition 0's. *)

val sched : t -> Sched.t
(** Partition 0's timeline — the whole network's when sequential.
    Harness code scheduling directly here composes with partitioned
    runs (local occurrences on any timeline order before deliveries at
    the same instant). *)

val sched_stats : t -> Sched.stats
(** Summed over partitions ([max_queue] is the per-partition maximum). *)

val transport_stats : t -> Transport.stats
(** Summed over partition transports. *)

val node_stats : t -> string -> node_stats
(** Counters for one host (zeroes for a host that has no traffic yet). *)

val metrics : t -> Obs.Metrics.t
(** Partition 0's network-layer registry (the only one when
    sequential).  Host-scoped cells live in the owning partition's
    registry — see {!registry_for}; {!metrics_snapshot} merges them
    all. *)

val registry_for : t -> host:string -> Obs.Metrics.t
(** The registry of the partition owning [host] — where cells that a
    host's callbacks (pollers, tickers) update must live, so only the
    owning domain ever writes them. *)

val metrics_snapshot : t -> Obs.Metrics.sample list
(** Whole-system snapshot: every partition's scheduler, transport, and
    network registries, plus every attached node's store and engine
    registries stamped with a [host] label.  Merging sums samples that
    agree on (name, labels), so partitioned and sequential runs emit
    the same schema.  One schema for tests, bench artifacts, and the
    CLI ([--metrics]). *)

val metrics_json : t -> string
(** {!metrics_snapshot} pretty-printed as JSON. *)

val trace : t -> Message.t list
(** Recorded messages, ordered by send time then sender stamp; empty
    unless created with [record:true]. *)

val remote_fetches : t -> int
(** Cross-host fetch round-trips started (Doc and RDF alike). *)

val fallback_misses : t -> int
(** Remote condition reads that found no prefetched snapshot (the
    fetch timed out after retries, or the resource was not in the
    engine's static dependency set).  They evaluate as "no document" —
    a nonzero count is the honest signature of a degraded network. *)

val context_for : t -> Node.t -> Node.context
(** The capabilities the network grants a node (used internally and by
    tests that drive nodes directly).  The query environment reads
    cross-host resources from the node's fetched-snapshot table;
    driving a node directly without prior round-trips sees misses. *)

val fetch :
  t ->
  me:string ->
  ?kind:Message.res_kind ->
  uri:string ->
  (Term.t option -> Clock.time -> unit) ->
  unit
(** Start one Get/Response round-trip from host [me] (which must be
    attached) to the owner of [uri], with timeout/retry per the fetch
    policy.  The continuation receives the document (or [None]) and
    the completion time.  Pollers are built on this. *)

val inject : t -> ?sender:string -> to_:string -> label:string -> ?ttl:Clock.span -> Term.t -> unit
(** Send an external stimulus event to a node (scheduled through the
    destination partition's transport like any other message). *)

val add_ticker :
  t -> ?host:string -> ?phase:Clock.span -> period:Clock.span -> (Clock.time -> unit) -> unit
(** Run a callback every [period] ms, first at [phase] (default:
    [period]).  Tickers never hold {!run_until_quiet} open.  [host]
    places the ticker on that host's partition timeline (required when
    the callback touches the host's node, as pollers do); default:
    partition 0. *)

val enable_heartbeat : t -> period:Clock.span -> unit
(** Advance every node's engine each period (one ticker per
    partition).  Engine absence deadlines are also scheduled precisely
    as occurrences of their own, so the heartbeat is only needed as a
    safety net for derivation timers and for engines whose deadlines
    arise outside message processing. *)

val run : t -> until:Clock.time -> unit
(** Execute every occurrence due at or before [until] in time order,
    then advance all engines to [until] (scheduling any round-trips
    clocked rules need) and drain what that made due.  Partitioned
    networks do this in conservative lookahead windows with barrier
    exchanges; the result is bit-identical. *)

val run_until_quiet : t -> ?limit:Clock.time -> unit -> Clock.time
(** Run while holding occurrences (message deliveries, fetch timeouts)
    remain; tickers and engine deadlines do not hold the simulation
    open.  Returns the final clock.  [limit] (default 10^9 ms) bounds
    runaway rule cascades. *)

val quiescent : t -> bool

(** {1 Crash injection}

    The durability counterpart of the transport's fault profile: a node
    process is killed at a deterministic virtual time and later reboots
    and recovers from its write-ahead log ({!Node.recover}).  The
    network infrastructure survives the crash — in-flight messages keep
    flying, and messages reaching a dead host are held at its door and
    redelivered on recovery, in order.  Under [XCHANGE_NO_WAL] (or for
    [durable:false] nodes) the same schedule exercises amnesic reboot
    instead. *)

val schedule_crash :
  t -> host:string -> at:Clock.time -> ?recover_at:Clock.time -> unit -> unit
(** Kill [host] at virtual time [at]; with [recover_at] (strictly after
    [at]), reboot and recover it then.  Without [recover_at] the host
    stays down.  Both occurrences hold {!run_until_quiet} open and run
    on the host's own partition timeline, so crash interleaving is
    bit-identical across sequential and sharded runs. *)

val crashes : t -> int
val recoveries : t -> int

(** {1 Partitioning observability} *)

val window_rounds : t -> int
(** Barrier-synchronised window rounds executed so far (0 when every
    run completed in a single unbounded window, e.g. sequentially). *)

val window_crossings : t -> int
(** Deliveries that crossed partitions through handoff rings. *)
