(** Building blocks of the sharded parallel scheduler.

    {!Network} can partition its hosts across OCaml domains, each
    partition owning a private {!Sched} timeline and {!Transport}.  The
    partitions advance in {e conservative lookahead windows} (classic
    parallel discrete-event simulation): with [L] the minimum
    cross-partition link latency, every partition may execute all
    occurrences in [\[T, T+L)] (where [T] is the global earliest due
    time) without synchronising, because a message sent inside the
    window arrives at or after its end.  Cross-partition sends are
    pushed through SPSC {!Ring}s and injected on the destination
    timeline at the barrier, ranked by their sender stamp
    ({!Sched.Rank}) — which makes the merged execution bit-identical to
    the single-timeline run.

    This module holds the parts that are independent of the network:
    host assignment, window arithmetic, rings, and the barrier domain
    pool; all are unit-testable in isolation. *)

open Xchange_event

val owner : partitions:int -> string -> int
(** Deterministic host-to-partition assignment:
    [Hashtbl.hash host mod partitions] (0 when [partitions <= 1]).
    Stable across runs and modes — it must be, since a host's partition
    decides which timeline schedules its occurrences. *)

val window_stop : next_due:Clock.time -> lookahead:Clock.span -> until:Clock.time -> Clock.time
(** Last instant (inclusive) every partition may execute up to without
    synchronising, given the globally earliest due occurrence and the
    conservative lookahead: [min (next_due + max 1 lookahead - 1) until].
    A lookahead so large the window covers the whole run (in particular
    [max_int] when no cross-partition link exists) yields [until],
    without overflowing. *)

(** Bounded single-producer single-consumer handoff queue.  Producer:
    one partition's domain pushing cross-partition deliveries during a
    window.  Consumer: the coordinating domain draining at the barrier
    (never concurrently with a push).  Overflow beyond the capacity
    spills into a mutex-guarded list — unbounded, but counted. *)
module Ring : sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  (** [capacity] defaults to 1024 slots. *)

  val push : 'a t -> 'a -> unit

  val drain : 'a t -> 'a list
  (** All queued items in push order (ring entries before spilled
      ones); empties the ring.  Must not race {!push}. *)

  val pushes : 'a t -> int
  val spills : 'a t -> int
end

(** A barrier-synchronised pool of worker domains.  [phase pool job]
    runs [job i] for partition indices [1 .. workers] on the worker
    domains and [job 0] on the calling domain, returning only when all
    have finished (exceptions are re-raised on the caller, after the
    barrier).  Keep pools scoped to one driver call ({!with_pool}):
    domains are a bounded resource. *)
module Pool : sig
  type t

  val create : workers:int -> t
  val phase : t -> (int -> unit) -> unit
  val shutdown : t -> unit
  val with_pool : workers:int -> (t -> 'a) -> 'a
end
