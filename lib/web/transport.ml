open Xchange_event

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable events : int;
  mutable gets : int;
  mutable responses : int;
  mutable updates : int;
  mutable dropped : int;
  mutable duplicated : int;
}

type faults = {
  drop : Message.t -> bool;
  duplicate : Message.t -> bool;
  jitter : Message.t -> Clock.span;
}

let no_faults =
  { drop = (fun _ -> false); duplicate = (fun _ -> false); jitter = (fun _ -> 0) }

(* A deterministic per-message coin: hash (seed, msg_id, salt) into
   [0, 1).  Different salts give independent coins for drop / dup /
   jitter decisions on the same message. *)
let coin ~seed ~salt (m : Message.t) =
  let h = Hashtbl.hash (seed, m.Message.msg_id, salt) in
  float_of_int (h land 0xFFFF) /. 65536.

let fault_profile ?(seed = 0) ?(drop_rate = 0.) ?(dup_rate = 0.) ?(max_jitter = 0) () =
  {
    drop = (fun m -> coin ~seed ~salt:1 m < drop_rate);
    duplicate = (fun m -> coin ~seed ~salt:2 m < dup_rate);
    jitter =
      (fun m ->
        if max_jitter <= 0 then 0
        else int_of_float (coin ~seed ~salt:3 m *. float_of_int (max_jitter + 1)));
  }

type t = {
  sched : Sched.t;
  lat : from:string -> to_:string -> Clock.span;
  faults : faults;
  mutable deliver : Message.t -> unit;
  s : stats;
  record : bool;
  mutable log : Message.t list;  (** newest first *)
  mutable in_flight : int;
}

let default_latency ~from:_ ~to_:_ = Clock.ms 5

let create ~sched ?(latency = default_latency) ?(drop = fun _ -> false) ?(faults = no_faults)
    ?(record = false) () =
  {
    sched;
    lat = latency;
    faults = { faults with drop = (fun m -> faults.drop m || drop m) };
    deliver = (fun m -> invalid_arg (Fmt.str "Transport: no delivery callback for %a" Message.pp m));
    s =
      {
        messages = 0;
        bytes = 0;
        events = 0;
        gets = 0;
        responses = 0;
        updates = 0;
        dropped = 0;
        duplicated = 0;
      };
    record;
    log = [];
    in_flight = 0;
  }

let on_deliver t f = t.deliver <- f

let account t (m : Message.t) =
  if t.record then t.log <- m :: t.log;
  t.s.messages <- t.s.messages + 1;
  t.s.bytes <- t.s.bytes + Message.size_bytes m;
  match m.Message.body with
  | Message.Event _ -> t.s.events <- t.s.events + 1
  | Message.Get _ -> t.s.gets <- t.s.gets + 1
  | Message.Response _ -> t.s.responses <- t.s.responses + 1
  | Message.Update _ -> t.s.updates <- t.s.updates + 1

let schedule_delivery t m at =
  t.in_flight <- t.in_flight + 1;
  Sched.at t.sched at (fun _now ->
      t.in_flight <- t.in_flight - 1;
      t.deliver m)

let send t (m : Message.t) =
  account t m;
  if t.faults.drop m then t.s.dropped <- t.s.dropped + 1
  else begin
    (* a message cannot depart before the present, even if stamped
       earlier (delayed actions stamp the future; nothing stamps the
       past except tests driving nodes directly) *)
    let departs = max m.Message.sent_at (Sched.now t.sched) in
    let deliver_at =
      Clock.add departs (t.lat ~from:m.Message.from_host ~to_:m.Message.to_host + t.faults.jitter m)
    in
    schedule_delivery t m deliver_at;
    if t.faults.duplicate m then begin
      t.s.duplicated <- t.s.duplicated + 1;
      (* the ghost copy trails the original by at least one instant *)
      schedule_delivery t m (Clock.add deliver_at (1 + t.faults.jitter m))
    end
  end

let pending t = t.in_flight
let stats t = t.s
let latency t ~from ~to_ = t.lat ~from ~to_
let trace t = List.rev t.log
