open Xchange_event
open Xchange_obs

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable events : int;
  mutable gets : int;
  mutable responses : int;
  mutable updates : int;
  mutable dropped : int;
  mutable duplicated : int;
}

type faults = {
  drop : Message.t -> bool;
  duplicate : Message.t -> bool;
  jitter : Message.t -> Clock.span;
}

let no_faults =
  { drop = (fun _ -> false); duplicate = (fun _ -> false); jitter = (fun _ -> 0) }

(* A deterministic per-message coin: hash (seed, origin, msg_id, salt)
   into [0, 1).  Different salts give independent coins for drop / dup /
   jitter decisions on the same message.  The message identity is
   [(from_host, msg_id)] — a per-origin stamp, not a global allocation
   order — so the same message draws the same coins whether the
   simulation runs on one timeline or sharded across domains. *)
let coin ~seed ~salt (m : Message.t) =
  let h = Hashtbl.hash (seed, m.Message.from_host, m.Message.msg_id, salt) in
  float_of_int (h land 0xFFFF) /. 65536.

let fault_profile ?(seed = 0) ?(drop_rate = 0.) ?(dup_rate = 0.) ?(max_jitter = 0) () =
  {
    drop = (fun m -> coin ~seed ~salt:1 m < drop_rate);
    duplicate = (fun m -> coin ~seed ~salt:2 m < dup_rate);
    jitter =
      (fun m ->
        if max_jitter <= 0 then 0
        else int_of_float (coin ~seed ~salt:3 m *. float_of_int (max_jitter + 1)));
  }

type counters = {
  c_messages : Obs.Metrics.Counter.t;
  c_bytes : Obs.Metrics.Counter.t;
  c_events : Obs.Metrics.Counter.t;
  c_gets : Obs.Metrics.Counter.t;
  c_responses : Obs.Metrics.Counter.t;
  c_updates : Obs.Metrics.Counter.t;
  c_dropped : Obs.Metrics.Counter.t;
  c_duplicated : Obs.Metrics.Counter.t;
}

type handoff = Message.t -> dup:int -> at:Clock.time -> release:(unit -> unit) -> bool

type t = {
  sched : Sched.t;
  lat : from:string -> to_:string -> Clock.span;
  faults : faults;
  mutable deliver : Message.t -> unit;
  mutable handoff : handoff option;
  m : Obs.Metrics.t;
  c : counters;
  record : bool;
  mutable log : Message.t list;  (** newest first *)
  in_flight : int Atomic.t;
      (** outstanding scheduled deliveries; atomic because a
          cross-partition copy is released on the destination's domain *)
}

let default_latency ~from:_ ~to_:_ = Clock.ms 5

let create ~sched ?(latency = default_latency) ?(drop = fun _ -> false) ?(faults = no_faults)
    ?(record = false) () =
  let m = Obs.Metrics.create () in
  let t =
    {
      sched;
      lat = latency;
      faults = { faults with drop = (fun m -> faults.drop m || drop m) };
      deliver = (fun m -> invalid_arg (Fmt.str "Transport: no delivery callback for %a" Message.pp m));
      handoff = None;
      m;
      c =
        {
          c_messages = Obs.Metrics.counter m "transport.messages";
          c_bytes = Obs.Metrics.counter m "transport.bytes";
          c_events = Obs.Metrics.counter m "transport.events";
          c_gets = Obs.Metrics.counter m "transport.gets";
          c_responses = Obs.Metrics.counter m "transport.responses";
          c_updates = Obs.Metrics.counter m "transport.updates";
          c_dropped = Obs.Metrics.counter m "transport.dropped";
          c_duplicated = Obs.Metrics.counter m "transport.duplicated";
        };
      record;
      log = [];
      in_flight = Atomic.make 0;
    }
  in
  Obs.Metrics.gauge_fn m "transport.in_flight" (fun () -> float_of_int (Atomic.get t.in_flight));
  t

let on_deliver t f = t.deliver <- f
let on_handoff t f = t.handoff <- Some f

let body_kind (m : Message.t) =
  match m.Message.body with
  | Message.Event _ -> "event"
  | Message.Get _ -> "get"
  | Message.Response _ -> "response"
  | Message.Update _ -> "update"

let account t (m : Message.t) =
  if t.record then t.log <- m :: t.log;
  Obs.Metrics.Counter.incr t.c.c_messages;
  Obs.Metrics.Counter.incr ~by:(Message.size_bytes m) t.c.c_bytes;
  match m.Message.body with
  | Message.Event _ -> Obs.Metrics.Counter.incr t.c.c_events
  | Message.Get _ -> Obs.Metrics.Counter.incr t.c.c_gets
  | Message.Response _ -> Obs.Metrics.Counter.incr t.c.c_responses
  | Message.Update _ -> Obs.Metrics.Counter.incr t.c.c_updates

(* Put one delivery of [m] on the destination timeline [t.sched] at
   [at], ranked by the message's sender stamp. *)
let inject t (m : Message.t) ~dup ~at ~release =
  Sched.at_msg t.sched ~origin:m.Message.from_host ~n:m.Message.msg_id ~dup at (fun _now ->
      release ();
      t.deliver m)

let schedule_delivery t ?(span = 0) ~dup m at =
  Atomic.incr t.in_flight;
  let release () = Atomic.decr t.in_flight in
  let taken =
    match t.handoff with None -> false | Some h -> h m ~dup ~at ~release
  in
  if not taken then
    Sched.at_msg t.sched ~origin:m.Message.from_host ~n:m.Message.msg_id ~dup at (fun _now ->
        release ();
        (* the delivery occurrence runs under the span that sent the
           message: the causal link across in-flight time *)
        Obs.Trace.run_under span (fun () -> t.deliver m))

let send t (m : Message.t) =
  account t m;
  let span =
    if Obs.enabled () then
      Obs.Trace.instant ~cat:"net"
        ~args:
          [
            ("kind", body_kind m);
            ("from", m.Message.from_host);
            ("to", m.Message.to_host);
            ("msg_id", string_of_int m.Message.msg_id);
          ]
        ~name:"send" ~vt:(Sched.now t.sched) ()
    else 0
  in
  if t.faults.drop m then Obs.Metrics.Counter.incr t.c.c_dropped
  else begin
    (* a message cannot depart before the present, even if stamped
       earlier (delayed actions stamp the future; nothing stamps the
       past except tests driving nodes directly) *)
    let departs = max m.Message.sent_at (Sched.now t.sched) in
    let deliver_at =
      Clock.add departs (t.lat ~from:m.Message.from_host ~to_:m.Message.to_host + t.faults.jitter m)
    in
    schedule_delivery t ~span ~dup:0 m deliver_at;
    if t.faults.duplicate m then begin
      Obs.Metrics.Counter.incr t.c.c_duplicated;
      (* the ghost copy trails the original by at least one instant *)
      schedule_delivery t ~span ~dup:1 m (Clock.add deliver_at (1 + t.faults.jitter m))
    end
  end

let pending t = Atomic.get t.in_flight
let metrics t = t.m

let stats t =
  {
    messages = Obs.Metrics.Counter.value t.c.c_messages;
    bytes = Obs.Metrics.Counter.value t.c.c_bytes;
    events = Obs.Metrics.Counter.value t.c.c_events;
    gets = Obs.Metrics.Counter.value t.c.c_gets;
    responses = Obs.Metrics.Counter.value t.c.c_responses;
    updates = Obs.Metrics.Counter.value t.c.c_updates;
    dropped = Obs.Metrics.Counter.value t.c.c_dropped;
    duplicated = Obs.Metrics.Counter.value t.c.c_duplicated;
  }

let merge_stats l =
  List.fold_left
    (fun a (b : stats) ->
      {
        messages = a.messages + b.messages;
        bytes = a.bytes + b.bytes;
        events = a.events + b.events;
        gets = a.gets + b.gets;
        responses = a.responses + b.responses;
        updates = a.updates + b.updates;
        dropped = a.dropped + b.dropped;
        duplicated = a.duplicated + b.duplicated;
      })
    {
      messages = 0;
      bytes = 0;
      events = 0;
      gets = 0;
      responses = 0;
      updates = 0;
      dropped = 0;
      duplicated = 0;
    }
    l

let latency t ~from ~to_ = t.lat ~from ~to_
let trace t = List.rev t.log
