open Xchange_data
open Xchange_event

type res_kind = Doc | Rdf

type body =
  | Event of Event.t
  | Get of { req_id : int; path : string; kind : res_kind }
  | Response of { req_id : int; doc : Term.t option }
  | Update of Xchange_rules.Action.update

type t = {
  msg_id : int;
  from_host : string;
  to_host : string;
  sent_at : Clock.time;
  body : body;
}

(* Fallback counters for harness code that builds messages without an
   originating node.  Network traffic proper carries ids allocated from
   per-node counters ([Node.fresh_msg_id]): a message's identity is then
   [(from_host, msg_id)] — a pure function of the sender's own execution
   history, so it comes out identical whether the simulation runs on one
   timeline or sharded across domains.  Fault coins and delivery ranks
   both key on that pair, never on global allocation order. *)
let msg_counter = ref 0
let req_counter = ref 0

let make ?msg_id ~from_host ~to_host ~sent_at body =
  let msg_id =
    match msg_id with
    | Some id -> id
    | None ->
        incr msg_counter;
        !msg_counter
  in
  { msg_id; from_host; to_host; sent_at; body }

let fresh_req_id () =
  incr req_counter;
  !req_counter

let reset_ids () =
  msg_counter := 0;
  req_counter := 0

let body_term = function
  | Event e -> Event.to_term e
  | Get { req_id; path; kind } ->
      Term.elem "get"
        ~attrs:
          [ ("req", string_of_int req_id); ("kind", match kind with Doc -> "doc" | Rdf -> "rdf") ]
        [ Term.text path ]
  | Response { req_id; doc } ->
      Term.elem "response"
        ~attrs:[ ("req", string_of_int req_id) ]
        (match doc with Some d -> [ d ] | None -> [])
  | Update u ->
      (* rendered coarsely: kind + target (payload sizes dominated by content) *)
      Term.elem "update-request"
        ~attrs:[ ("doc", Xchange_rules.Action.update_doc u) ]
        (match u with
        | Xchange_rules.Action.U_insert { content; _ }
        | Xchange_rules.Action.U_replace { content; _ }
        | Xchange_rules.Action.U_create_doc { content; _ } ->
            [ content ]
        | Xchange_rules.Action.U_delete _ | Xchange_rules.Action.U_delete_doc _
        | Xchange_rules.Action.U_rdf_assert _ | Xchange_rules.Action.U_rdf_retract _ ->
            [])

let to_term m =
  Term.elem "envelope"
    [
      Term.elem "header"
        [
          Term.elem "from" [ Term.text m.from_host ];
          Term.elem "to" [ Term.text m.to_host ];
          Term.elem "sent-at" [ Term.int m.sent_at ];
        ];
      Term.elem "body" [ body_term m.body ];
    ]

let size_bytes m = String.length (Xml.to_string (to_term m))

let pp ppf m =
  let kind =
    match m.body with
    | Event e -> Fmt.str "event %s#%d" e.Event.label e.Event.id
    | Get { path; kind; _ } ->
        Fmt.str "GET %s%s" path (match kind with Doc -> "" | Rdf -> " (rdf)")
    | Response _ -> "response"
    | Update u -> Fmt.str "UPDATE %s" (Xchange_rules.Action.update_doc u)
  in
  Fmt.pf ppf "msg#%d %s->%s @%a [%s]" m.msg_id m.from_host m.to_host Clock.pp_time m.sent_at kind
