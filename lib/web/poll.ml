open Xchange_data
open Xchange_event
open Xchange_obs

let changed_label = "poll:changed"

type stats = {
  s_polls : Obs.Metrics.Counter.t;
  s_changes : Obs.Metrics.Counter.t;
  s_last : Obs.Metrics.Gauge.t;
}

let polls s = Obs.Metrics.Counter.value s.s_polls
let changes_seen s = Obs.Metrics.Counter.value s.s_changes
let last_change_detected_at s = int_of_float (Obs.Metrics.Gauge.value s.s_last)

let attach net ~poller ~target ~period =
  let me = Network.node_exn net poller in
  (* cells live in the poller's partition registry, labelled by the
     edge they watch, so several pollers coexist in one snapshot and
     only the owning domain ever writes them *)
  let labels = [ ("poller", poller); ("target", target) ] in
  let m = Network.registry_for net ~host:poller in
  let stats =
    {
      s_polls = Obs.Metrics.counter m ~labels "poll.polls";
      s_changes = Obs.Metrics.counter m ~labels "poll.changes_seen";
      s_last = Obs.Metrics.gauge m ~labels "poll.last_change_at";
    }
  in
  let last = ref None in
  let on_response doc now =
    match doc with
    | None -> ()
    | Some d ->
        let changed =
          match !last with None -> true | Some prev -> not (Term.equal prev d)
        in
        last := Some d;
        if changed then begin
          Obs.Metrics.Counter.incr stats.s_changes;
          Obs.Metrics.Gauge.set stats.s_last (float_of_int now);
          let ctx = Network.context_for net me in
          let ev =
            Event.make ~id:(Node.fresh_event_id me) ~sender:poller ~recipient:poller
              ~occurred_at:now ~label:changed_label
              (Term.elem "changed" [ Term.strip_ids d ])
          in
          ignore (Node.receive_event me ctx ev)
        end
  in
  Network.add_ticker net ~host:poller ~period (fun _now ->
      Obs.Metrics.Counter.incr stats.s_polls;
      (* a full round-trip on the shared timeline, with the network's
         timeout/retry policy — dropped polls simply yield no response *)
      Network.fetch net ~me:poller ~uri:target on_response);
  stats
