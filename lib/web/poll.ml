open Xchange_data
open Xchange_event

let changed_label = "poll:changed"

type stats = {
  mutable polls : int;
  mutable changes_seen : int;
  mutable last_change_detected_at : Clock.time;
}

let attach net ~poller ~target ~period =
  let me = Network.node_exn net poller in
  let stats = { polls = 0; changes_seen = 0; last_change_detected_at = Clock.origin } in
  let last = ref None in
  let on_response doc now =
    match doc with
    | None -> ()
    | Some d ->
        let changed =
          match !last with None -> true | Some prev -> not (Term.equal prev d)
        in
        last := Some d;
        if changed then begin
          stats.changes_seen <- stats.changes_seen + 1;
          stats.last_change_detected_at <- now;
          let ctx = Network.context_for net me in
          let ev =
            Event.make ~sender:poller ~recipient:poller ~occurred_at:now ~label:changed_label
              (Term.elem "changed" [ Term.strip_ids d ])
          in
          ignore (Node.receive_event me ctx ev)
        end
  in
  Network.add_ticker net ~period (fun _now ->
      stats.polls <- stats.polls + 1;
      (* a full round-trip on the shared timeline, with the network's
         timeout/retry policy — dropped polls simply yield no response *)
      Network.fetch net ~me:poller ~uri:target on_response);
  stats
