(** Per-node write-ahead log: durability for reactive rules.

    Reactive rules are only trustworthy Web infrastructure if their
    effects survive node failure.  The WAL records, {e before} the node
    acts on them, every input that drives its state machine — network
    events (including reified rule sets, Thesis 11), accepted remote
    updates, engine-clock advances — plus an audit stream of applied
    store mutations and rule firings, in a length-prefixed, checksummed
    binary format.  Periodic {!record.Snapshot} records embed the whole
    recovery baseline: the store snapshot, the node's id-lane counters,
    the dedup set, and the engine's recent input tail (what is needed to
    re-prime composite-event state within the horizon).

    The log is an append-only byte device held in memory (the simulated
    Web has no disk), exposed as bytes ({!contents} / {!of_string} /
    {!to_file}) so harnesses can persist, corrupt, and pin it.

    {b Corruption tolerance.}  Decoding ({!records}) returns the longest
    valid prefix and a {!stop} describing why it ended: a truncated
    tail, a torn (half-written) frame, or a checksum mismatch all stop
    replay at the last valid record — they never raise.

    Recovery itself lives in {!Node.recover}; {!replay_store} is the
    physical-redo half (mutations only), used by the replay benchmark
    and by store-level tools. *)

open Xchange_data
open Xchange_event
open Xchange_rules
open Xchange_obs

(** One engine input, in arrival order: what {!Node} feeds its engine.
    The snapshot's tail of these re-primes composite-event state. *)
type tail_entry = T_event of Event.t | T_advance of Clock.time

type snapshot = {
  s_at : Clock.time;
  s_store : Term.t;  (** {!Store.snapshot} of the whole store *)
  s_event_n : int;  (** id-lane counters at snapshot time … *)
  s_msg_n : int;
  s_req_n : int;  (** … restored {e after} tail priming, which re-runs
                      the allocations the tail performed the first time *)
  s_firings : int;
  s_seen : int list;  (** processed event ids (idempotent-receiver set) *)
  s_seen_updates : (string * int) list;  (** processed remote-update identities *)
  s_logs : string list;  (** node log lines, newest first *)
  s_errors : (string * string) list;  (** recorded rule errors, newest first *)
  s_tail : tail_entry list;  (** engine inputs still within the horizon, oldest first *)
}

type record =
  | Event of Event.t
      (** a network event accepted for processing (logged write-ahead,
          already stamped with its reception time) *)
  | Remote_update of { from : string; msg_id : int; at : Clock.time; update : Action.update }
      (** an accepted remote update request, stamped with its reception
          time so replay regenerates identical cascade timestamps *)
  | Advance of Clock.time  (** an engine-clock advance (absence timers) *)
  | Update of Action.update
      (** a store mutation that committed (physical redo / audit; logical
          recovery re-derives these by re-executing the inputs above) *)
  | Firing of { rule : string; at : Clock.time }  (** audit only *)
  | Snapshot of snapshot

type t

val create : ?metrics:Obs.Metrics.t -> unit -> t
(** An empty log.  [metrics] registers the [wal.*] cells (appends,
    bytes, snapshots, compactions, replayed records, corrupt stops) in
    the given registry — typically the owning node's. *)

val append : t -> record -> unit

val size_bytes : t -> int
val appended : t -> int
(** Frames appended (or decoded valid, for logs loaded from bytes). *)

val records_since_snapshot : t -> int
(** Appends since the last [Snapshot] frame — drives the owner's
    snapshot cadence. *)

type mark
(** A position in the log.  {!truncate} drops everything appended after
    it — how transactional rollback keeps the mutation audit honest:
    mutations of an aborted [Atomic] block never stay logged. *)

val mark : t -> mark
val truncate : t -> mark -> unit

(** Why decoding stopped. *)
type stop =
  | Clean  (** end of log *)
  | Corrupt of string  (** truncated tail / torn frame / bad checksum /
                           undecodable payload — replay keeps the valid
                           prefix and reports the reason *)

val records : t -> record list * stop
(** Decode from the start; never raises. *)

val drop_corrupt_tail : t -> unit
(** Rewrite the log as its longest valid prefix.  Recovery calls this
    before appending again: new frames written after garbage bytes
    would be unreachable to every future replay. *)

val compact : t -> keep:(record -> bool) -> unit
(** Drop every record preceding the last [Snapshot], except those
    [keep] selects (the node keeps reified-rule-set events: loaded
    rules are engine structure, not snapshot state).  Kept records
    retain their order before the snapshot.  No snapshot, no effect. *)

val contents : t -> string
val of_string : string -> t
(** Wrap raw bytes (possibly corrupt) as a log; {!appended} counts the
    valid prefix. *)

val to_file : t -> string -> unit
val of_file : string -> (t, string) result

val replay_store : t -> Store.t -> (int, string) result
(** Physical redo: apply every [Update] record, in order, to the store;
    returns the number applied.  Stops with [Error] at the first
    mutation the store rejects (replaying onto the wrong base).  Other
    record kinds are skipped. *)

val crc32 : string -> int32
(** The frame checksum (IEEE 802.3 polynomial), exposed for corpus
    tooling and tests. *)
