(* Building blocks of the sharded scheduler: host-to-partition
   assignment, conservative-lookahead window arithmetic, bounded SPSC
   handoff rings, and a barrier-synchronised domain pool.  The pieces
   are deliberately independent of [Network] so the horizon math and
   ring behaviour can be unit-tested in isolation. *)

open Xchange_event

let owner ~partitions host =
  if partitions <= 1 then 0 else Hashtbl.hash host mod partitions

let window_stop ~(next_due : Clock.time) ~(lookahead : Clock.span) ~(until : Clock.time) =
  let lookahead = max 1 lookahead in
  (* guard against overflow: an "infinite" lookahead (no cross-partition
     link) must collapse the window to the whole run *)
  if lookahead - 1 >= until - next_due then until else next_due + lookahead - 1

module Ring = struct
  (* Bounded single-producer single-consumer queue.  The producer is the
     source partition's domain (pushing during a window); the consumer
     is the coordinating domain draining at the barrier, when no
     producer is running.  The atomics make the common path lock-free;
     overflow spills into a mutex-guarded list rather than blocking the
     producer mid-window. *)
  type 'a t = {
    buf : 'a option array;
    head : int Atomic.t;  (** next slot to read *)
    tail : int Atomic.t;  (** next slot to write *)
    mu : Mutex.t;
    mutable spill : 'a list;  (** newest first *)
    pushes : int Atomic.t;
    spills : int Atomic.t;
  }

  let create ?(capacity = 1024) () =
    {
      buf = Array.make (max 1 capacity) None;
      head = Atomic.make 0;
      tail = Atomic.make 0;
      mu = Mutex.create ();
      spill = [];
      pushes = Atomic.make 0;
      spills = Atomic.make 0;
    }

  let push t x =
    Atomic.incr t.pushes;
    let cap = Array.length t.buf in
    let tail = Atomic.get t.tail in
    if tail - Atomic.get t.head >= cap then begin
      Atomic.incr t.spills;
      Mutex.lock t.mu;
      t.spill <- x :: t.spill;
      Mutex.unlock t.mu
    end
    else begin
      t.buf.(tail mod cap) <- Some x;
      Atomic.set t.tail (tail + 1)
    end

  (* FIFO drain; must not run concurrently with [push] (barrier
     discipline enforces this). *)
  let drain t =
    let cap = Array.length t.buf in
    let tail = Atomic.get t.tail in
    let rec take head acc =
      if head >= tail then (head, acc)
      else
        let slot = head mod cap in
        let x = Option.get t.buf.(slot) in
        t.buf.(slot) <- None;
        take (head + 1) (x :: acc)
    in
    let head, acc = take (Atomic.get t.head) [] in
    Atomic.set t.head head;
    Mutex.lock t.mu;
    let spilled = t.spill in
    t.spill <- [];
    Mutex.unlock t.mu;
    (* [acc] and [spilled] are both newest-first; ring entries precede
       spilled ones in push order *)
    List.rev_append acc (List.rev spilled)

  let pushes t = Atomic.get t.pushes
  let spills t = Atomic.get t.spills
end

module Pool = struct
  (* P-1 worker domains plus the calling domain executing phases in
     lockstep: [phase pool job] runs [job i] for every partition index
     concurrently (the caller takes index 0) and returns only when all
     are done — a full barrier.  Mutex/condition hand-offs dominate the
     cost, which is fine: phases are windows' worth of work, not single
     occurrences. *)
  type t = {
    workers : int;
    mu : Mutex.t;
    cv : Condition.t;
    mutable epoch : int;
    mutable job : (int -> unit) option;
    mutable remaining : int;
    mutable stop : bool;
    mutable error : (exn * Printexc.raw_backtrace) option;
    mutable domains : unit Domain.t list;
  }

  let record_error t exn bt =
    Mutex.lock t.mu;
    if t.error = None then t.error <- Some (exn, bt);
    Mutex.unlock t.mu

  let worker t index () =
    let my_epoch = ref 0 in
    let rec loop () =
      Mutex.lock t.mu;
      while (not t.stop) && t.epoch = !my_epoch do
        Condition.wait t.cv t.mu
      done;
      if t.stop then Mutex.unlock t.mu
      else begin
        let job = Option.get t.job in
        my_epoch := t.epoch;
        Mutex.unlock t.mu;
        (try job index
         with exn -> record_error t exn (Printexc.get_raw_backtrace ()));
        Mutex.lock t.mu;
        t.remaining <- t.remaining - 1;
        Condition.broadcast t.cv;
        Mutex.unlock t.mu;
        loop ()
      end
    in
    loop ()

  let create ~workers =
    let t =
      {
        workers;
        mu = Mutex.create ();
        cv = Condition.create ();
        epoch = 0;
        job = None;
        remaining = 0;
        stop = false;
        error = None;
        domains = [];
      }
    in
    t.domains <- List.init workers (fun i -> Domain.spawn (worker t (i + 1)));
    t

  let phase t job =
    Mutex.lock t.mu;
    t.job <- Some job;
    t.epoch <- t.epoch + 1;
    t.remaining <- t.workers;
    Condition.broadcast t.cv;
    Mutex.unlock t.mu;
    (* the caller is partition 0's executor; its failure must still wait
       out the barrier before propagating, or workers would race the
       next phase's state *)
    (try job 0 with exn -> record_error t exn (Printexc.get_raw_backtrace ()));
    Mutex.lock t.mu;
    while t.remaining > 0 do
      Condition.wait t.cv t.mu
    done;
    let err = t.error in
    t.error <- None;
    Mutex.unlock t.mu;
    match err with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ()

  let shutdown t =
    Mutex.lock t.mu;
    t.stop <- true;
    Condition.broadcast t.cv;
    Mutex.unlock t.mu;
    List.iter Domain.join t.domains;
    t.domains <- []

  let with_pool ~workers f =
    let t = create ~workers in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
end
