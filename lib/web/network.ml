open Xchange_data
open Xchange_query
open Xchange_event
open Xchange_rules
open Xchange_obs

type fetch_policy = { timeout : Clock.span; retries : int }

let default_fetch_policy = { timeout = 60; retries = 2 }

type node_stats = {
  mutable events_in : int;
  mutable gets_in : int;
  mutable responses_in : int;
  mutable updates_in : int;
  mutable deferred_events : int;
  mutable fetches : int;
  mutable fetch_retries : int;
  mutable fetch_timeouts : int;
  mutable fetches_completed : int;
  mutable fetch_latency_total : Clock.span;
  mutable fetch_latency_max : Clock.span;
}

(* Registry cells behind one host's legacy [node_stats] view; the
   request-to-response latency histogram carries completion count, sum,
   and max in one cell. *)
type host_cells = {
  hc_events_in : Obs.Metrics.Counter.t;
  hc_gets_in : Obs.Metrics.Counter.t;
  hc_responses_in : Obs.Metrics.Counter.t;
  hc_updates_in : Obs.Metrics.Counter.t;
  hc_deferred : Obs.Metrics.Counter.t;
  hc_fetches : Obs.Metrics.Counter.t;
  hc_retries : Obs.Metrics.Counter.t;
  hc_timeouts : Obs.Metrics.Counter.t;
  hc_rtt : Obs.Metrics.Histogram.t;
}

(* What a node has fetched from the rest of the Web, latest value per
   (host, path, kind).  The snapshot a deferred delivery's condition
   evaluation reads from. *)
type snapshot = (string * string * Message.res_kind, Term.t option) Hashtbl.t

type t = {
  sched : Sched.t;
  transport : Transport.t;
  nodes : (string, Node.t) Hashtbl.t;
  cells_by_host : (string, host_cells) Hashtbl.t;
  snapshots : (string, snapshot) Hashtbl.t;
  policy : fetch_policy;
  m : Obs.Metrics.t;
  c_remote_fetches : Obs.Metrics.Counter.t;
  c_fallback_misses : Obs.Metrics.Counter.t;
  deadlines : (string, Clock.time) Hashtbl.t;
      (** earliest engine-deadline occurrence queued per host *)
}

let node t host = Hashtbl.find_opt t.nodes host

let node_exn t host =
  match node t host with
  | Some n -> n
  | None -> invalid_arg ("Network.node_exn: unknown host " ^ host)

let hosts t = List.sort String.compare (Hashtbl.fold (fun h _ acc -> h :: acc) t.nodes [])
let trace t = Transport.trace t.transport
let clock t = Sched.now t.sched
let sched t = t.sched
let sched_stats t = Sched.stats t.sched
let transport_stats t = Transport.stats t.transport
let remote_fetches t = Obs.Metrics.Counter.value t.c_remote_fetches
let fallback_misses t = Obs.Metrics.Counter.value t.c_fallback_misses
let metrics t = t.m

let cells_for t host =
  match Hashtbl.find_opt t.cells_by_host host with
  | Some c -> c
  | None ->
      let labels = [ ("host", host) ] in
      let c =
        {
          hc_events_in = Obs.Metrics.counter t.m ~labels "node.events_in";
          hc_gets_in = Obs.Metrics.counter t.m ~labels "node.gets_in";
          hc_responses_in = Obs.Metrics.counter t.m ~labels "node.responses_in";
          hc_updates_in = Obs.Metrics.counter t.m ~labels "node.updates_in";
          hc_deferred = Obs.Metrics.counter t.m ~labels "node.deferred_events";
          hc_fetches = Obs.Metrics.counter t.m ~labels "node.fetches";
          hc_retries = Obs.Metrics.counter t.m ~labels "node.fetch_retries";
          hc_timeouts = Obs.Metrics.counter t.m ~labels "node.fetch_timeouts";
          hc_rtt = Obs.Metrics.histogram t.m ~labels "node.fetch_rtt_ms";
        }
      in
      Hashtbl.replace t.cells_by_host host c;
      c

let node_stats t host =
  let c = cells_for t host in
  {
    events_in = Obs.Metrics.Counter.value c.hc_events_in;
    gets_in = Obs.Metrics.Counter.value c.hc_gets_in;
    responses_in = Obs.Metrics.Counter.value c.hc_responses_in;
    updates_in = Obs.Metrics.Counter.value c.hc_updates_in;
    deferred_events = Obs.Metrics.Counter.value c.hc_deferred;
    fetches = Obs.Metrics.Counter.value c.hc_fetches;
    fetch_retries = Obs.Metrics.Counter.value c.hc_retries;
    fetch_timeouts = Obs.Metrics.Counter.value c.hc_timeouts;
    fetches_completed = Obs.Metrics.Histogram.count c.hc_rtt;
    fetch_latency_total = int_of_float (Obs.Metrics.Histogram.sum c.hc_rtt);
    fetch_latency_max = int_of_float (Obs.Metrics.Histogram.max c.hc_rtt);
  }

let snapshot_for t host =
  match Hashtbl.find_opt t.snapshots host with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 16 in
      Hashtbl.replace t.snapshots host s;
      s

(* A node's query environment: local names resolve against its own
   store; cross-host URIs against the node's fetched snapshots — what
   the prefetch round-trips brought back before this evaluation ran.
   No store on another host is ever read directly. *)
let env_for t (me : Node.t) =
  let local = Store.env (Node.store me) in
  let snap = snapshot_for t (Node.host me) in
  let lookup kind uri =
    match Hashtbl.find_opt snap (Uri.host uri, Uri.path uri, kind) with
    | Some doc -> doc
    | None ->
        Obs.Metrics.Counter.incr t.c_fallback_misses;
        None
  in
  let fetch = function
    | Condition.Local _ as res -> local.Condition.fetch res
    | Condition.Remote uri as res ->
        let host = Uri.host uri in
        if host = "" || String.equal host (Node.host me) then local.Condition.fetch res
        else Option.to_list (lookup Message.Doc uri)
    | Condition.View _ -> []
  in
  let fetch_rdf = function
    | Condition.Local _ as res -> local.Condition.fetch_rdf res
    | Condition.Remote uri as res ->
        let host = Uri.host uri in
        if host = "" || String.equal host (Node.host me) then local.Condition.fetch_rdf res
        else
          Option.bind (lookup Message.Rdf uri) (fun term ->
              match Rdf.graph_of_term term with Ok g -> Some g | Error _ -> None)
    | Condition.View _ -> None
  in
  (* only resources served by [me]'s own store take its memoized fast
     path; snapshot reads are already cheap *)
  let cached_match res ~seed q =
    match res with
    | Condition.Local _ -> local.Condition.cached_match res ~seed q
    | Condition.Remote uri ->
        let host = Uri.host uri in
        if host = "" || String.equal host (Node.host me) then
          local.Condition.cached_match res ~seed q
        else None
    | Condition.View _ -> None
  in
  { Condition.fetch; fetch_rdf; cached_match }

let context_for t me =
  {
    Node.env = env_for t me;
    send = (fun m -> Transport.send t.transport m);
    now = (fun () -> Sched.now t.sched);
  }

(* One Get/Response round-trip with retry-on-timeout.  The continuation
   runs exactly once: on the first Response (late duplicates find their
   handler gone), or with [None] after the last retry times out.
   Successful responses also land in the requester's snapshot table.
   Timeout occurrences hold the simulation open — a dropped Response
   must still trigger its retry under [run_until_quiet]. *)
let fetch_round_trip t (me : Node.t) ~kind ~uri k =
  let to_host = Uri.host uri and path = Uri.path uri in
  let me_host = Node.host me in
  if not (Hashtbl.mem t.nodes to_host) then k None (Sched.now t.sched)
  else begin
    let cells = cells_for t me_host in
    Obs.Metrics.Counter.incr t.c_remote_fetches;
    Obs.Metrics.Counter.incr cells.hc_fetches;
    let started = Sched.now t.sched in
    let fetch_span =
      if Obs.enabled () then
        Obs.Trace.instant ~cat:"net"
          ~args:[ ("uri", uri); ("by", me_host) ]
          ~name:"fetch" ~vt:started ()
      else 0
    in
    let done_ = ref false in
    let rec attempt n =
      let req_id = Message.fresh_req_id () in
      let cancel_timeout = ref (fun () -> ()) in
      Node.expect_response me ~req_id (fun doc at ->
          !cancel_timeout ();
          if not !done_ then begin
            done_ := true;
            let rtt = at - started in
            Obs.Metrics.Histogram.observe cells.hc_rtt (float_of_int rtt);
            Hashtbl.replace (snapshot_for t me_host) (to_host, path, kind) doc;
            k doc at
          end);
      Obs.Trace.run_under fetch_span (fun () ->
          Transport.send t.transport
            (Message.make ~from_host:me_host ~to_host ~sent_at:(Sched.now t.sched)
               (Message.Get { req_id; path; kind })));
      cancel_timeout :=
        Sched.cancellable t.sched ~holds:true
          (Clock.add (Sched.now t.sched) t.policy.timeout)
          (fun at ->
            Node.forget_response me ~req_id;
            if not !done_ then
              if n < t.policy.retries then begin
                Obs.Metrics.Counter.incr cells.hc_retries;
                attempt (n + 1)
              end
              else begin
                done_ := true;
                Obs.Metrics.Counter.incr cells.hc_timeouts;
                (* no snapshot write: a stale earlier value beats
                   overwriting it with "unreachable" *)
                k None at
              end)
    in
    attempt 0
  end

let fetch t ~me ?(kind = Message.Doc) ~uri k =
  match Hashtbl.find_opt t.nodes me with
  | None -> invalid_arg ("Network.fetch: unknown host " ^ me)
  | Some n -> fetch_round_trip t n ~kind ~uri k

(* The cross-host slice of an engine's static dependency set: what must
   be round-tripped before the node may react. *)
let cross_deps t (n : Node.t) deps =
  let me = Node.host n in
  List.filter
    (fun ((_ : [ `Doc | `Rdf ]), uri) ->
      let h = Uri.host uri in
      h <> "" && (not (String.equal h me)) && Hashtbl.mem t.nodes h)
    deps

(* Refresh every listed dependency, then run [process] — immediately
   when there is nothing to fetch, otherwise inside the occurrence that
   completes the last round-trip (so the reaction is delayed by real
   network time). *)
let with_remote_snapshot t (n : Node.t) deps process =
  match deps with
  | [] -> process ()
  | deps ->
      Obs.Metrics.Counter.incr (cells_for t (Node.host n)).hc_deferred;
      let remaining = ref (List.length deps) in
      List.iter
        (fun (rk, uri) ->
          let kind = match rk with `Doc -> Message.Doc | `Rdf -> Message.Rdf in
          fetch_round_trip t n ~kind ~uri (fun _doc _at ->
              decr remaining;
              if !remaining = 0 then process ()))
        deps

(* Engine absence deadlines become occurrences of their own, so a rule
   like "no rebooking within 2h" fires at its due time, not at the next
   heartbeat.  Non-holding: an armed timer alone does not keep
   [run_until_quiet] going (exactly like tickers). *)
let rec advance_node t (n : Node.t) time =
  let deps = cross_deps t n (Engine.clocked_remote_resources (Node.engine n)) in
  with_remote_snapshot t n deps (fun () ->
      let ctx = context_for t n in
      let time = max time (Sched.now t.sched) in
      ignore (Node.advance n ctx time);
      (* requeue only deadlines the advance left in the future — one the
         engine failed to clear must not spin the scheduler *)
      match Engine.next_deadline (Node.engine n) with
      | Some d when d > time -> schedule_deadline t n d
      | Some _ | None -> ())

and schedule_deadline t (n : Node.t) due =
  let host = Node.host n in
  let worthwhile =
    match Hashtbl.find_opt t.deadlines host with Some d -> due < d | None -> true
  in
  if worthwhile then begin
    Hashtbl.replace t.deadlines host due;
    Sched.at t.sched ~holds:false due (fun at ->
        (match Hashtbl.find_opt t.deadlines host with
        | Some d when d = due -> Hashtbl.remove t.deadlines host
        | _ -> ());
        advance_node t n at)
  end

let schedule_engine_deadline t (n : Node.t) =
  match Engine.next_deadline (Node.engine n) with
  | None -> ()
  | Some due -> schedule_deadline t n due

let deliver t (m : Message.t) =
  match Hashtbl.find_opt t.nodes m.Message.to_host with
  | None -> () (* undeliverable: dropped, like the real Web *)
  | Some n ->
      let cells = cells_for t m.Message.to_host in
      let ctx = context_for t n in
      let span =
        if Obs.enabled () then
          Obs.Trace.begin_span ~cat:"net"
            ~args:
              [
                ("kind", Transport.body_kind m);
                ("from", m.Message.from_host);
                ("to", m.Message.to_host);
              ]
            ~name:"message" ~vt:(Sched.now t.sched) ()
        else 0
      in
      (match m.Message.body with
      | Message.Event e ->
          Obs.Metrics.Counter.incr cells.hc_events_in;
          let deps = cross_deps t n (Engine.remote_resources (Node.engine n)) in
          with_remote_snapshot t n deps (fun () ->
              ignore (Node.receive_event n ctx e);
              schedule_engine_deadline t n)
      | Message.Get { req_id; path; kind } ->
          Obs.Metrics.Counter.incr cells.hc_gets_in;
          Node.receive_get n ctx ~from:m.Message.from_host ~req_id ~path ~kind
      | Message.Response { req_id; doc } ->
          Obs.Metrics.Counter.incr cells.hc_responses_in;
          Node.receive_response n ctx ~req_id doc
      | Message.Update u ->
          Obs.Metrics.Counter.incr cells.hc_updates_in;
          let deps = cross_deps t n (Engine.remote_resources (Node.engine n)) in
          with_remote_snapshot t n deps (fun () ->
              ignore (Node.receive_update n ctx ~from:m.Message.from_host u);
              schedule_engine_deadline t n));
      Obs.Trace.end_span span ~vt:(Sched.now t.sched)

let create ?latency ?drop ?faults ?record ?(fetch_policy = default_fetch_policy) () =
  let sched = Sched.create () in
  let m = Obs.Metrics.create () in
  let t =
    {
      sched;
      transport = Transport.create ~sched ?latency ?drop ?faults ?record ();
      nodes = Hashtbl.create 8;
      cells_by_host = Hashtbl.create 8;
      snapshots = Hashtbl.create 8;
      policy = fetch_policy;
      m;
      c_remote_fetches = Obs.Metrics.counter m "net.remote_fetches";
      c_fallback_misses = Obs.Metrics.counter m "net.fallback_misses";
      deadlines = Hashtbl.create 8;
    }
  in
  Transport.on_deliver t.transport (deliver t);
  t

let add_node t node =
  let h = Node.host node in
  if Hashtbl.mem t.nodes h then Error ("duplicate host " ^ h)
  else begin
    Hashtbl.replace t.nodes h node;
    Ok ()
  end

let add_node_exn t node =
  match add_node t node with
  | Ok () -> ()
  | Error e -> invalid_arg ("Network.add_node: " ^ e)

(* Whole-system snapshot: the scheduler's, the transport's, and the
   network's own registries, plus every node's store and engine,
   stamped with the host they belong to.  One schema for tests, the
   bench artifacts, and the CLI. *)
let metrics_snapshot t =
  let per_node =
    Hashtbl.fold
      (fun host n acc ->
        let labels = [ ("host", host) ] in
        Obs.Metrics.snapshot ~labels (Store.metrics (Node.store n))
        :: Obs.Metrics.snapshot ~labels (Engine.metrics (Node.engine n))
        :: Obs.Metrics.snapshot ~labels (Node.metrics n)
        :: acc)
      t.nodes []
  in
  Obs.Metrics.merge
    (Obs.Metrics.snapshot (Sched.metrics t.sched)
    :: Obs.Metrics.snapshot (Transport.metrics t.transport)
    :: Obs.Metrics.snapshot t.m
    :: per_node)

let metrics_json t = Json.to_string ~pretty:true (Obs.Metrics.to_json (metrics_snapshot t))

let inject t ?(sender = "external") ~to_ ~label ?ttl payload =
  let now = Sched.now t.sched in
  let to_host = Uri.host to_ in
  let event = Event.make ~sender ~recipient:to_ ~occurred_at:now ?ttl ~label payload in
  Transport.send t.transport
    (Message.make ~from_host:sender ~to_host ~sent_at:now (Message.Event event))

let add_ticker t ?phase ~period f = Sched.every t.sched ?phase ~period f

let enable_heartbeat t ~period =
  add_ticker t ~period (fun now -> Hashtbl.iter (fun _ n -> advance_node t n now) t.nodes)

let run t ~until =
  Sched.run_until t.sched until;
  Hashtbl.iter (fun _ n -> advance_node t n until) t.nodes;
  (* timer firings may have scheduled deliveries due exactly now *)
  Sched.run_until t.sched until

let quiescent t = Sched.pending t.sched = 0

let run_until_quiet t ?(limit = 1_000_000_000) () =
  let rec loop () =
    match Sched.next_holding t.sched with
    | Some next when next <= limit ->
        run t ~until:next;
        loop ()
    | Some _ | None -> Sched.now t.sched
  in
  loop ()
