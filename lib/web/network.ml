open Xchange_query
open Xchange_event

type ticker = { period : Clock.span; mutable next : Clock.time; f : Clock.time -> unit }

type t = {
  transport : Transport.t;
  nodes : (string, Node.t) Hashtbl.t;
  mutable tickers : ticker list;
  mutable time : Clock.time;
  mutable remote_fetches : int;
}

let create ?latency ?drop ?record () =
  {
    transport = Transport.create ?latency ?drop ?record ();
    nodes = Hashtbl.create 8;
    tickers = [];
    time = Clock.origin;
    remote_fetches = 0;
  }

let add_node t node =
  let h = Node.host node in
  if Hashtbl.mem t.nodes h then invalid_arg ("Network.add_node: duplicate host " ^ h);
  Hashtbl.replace t.nodes h node

let node t host = Hashtbl.find_opt t.nodes host

let node_exn t host =
  match node t host with
  | Some n -> n
  | None -> invalid_arg ("Network.node_exn: unknown host " ^ host)

let hosts t = List.sort String.compare (Hashtbl.fold (fun h _ acc -> h :: acc) t.nodes [])
let trace t = Transport.trace t.transport
let clock t = t.time
let transport_stats t = Transport.stats t.transport
let remote_fetches t = t.remote_fetches

(* A node's query environment: local names resolve against its own
   store; remote URIs against the owning node's store, with the
   GET/Response pair accounted in the traffic statistics. *)
let env_for t (me : Node.t) =
  let local = Store.env (Node.store me) in
  let fetch = function
    | Condition.Local _ as res -> local.Condition.fetch res
    | Condition.Remote uri as res ->
        let host = Uri.host uri in
        if host = "" || String.equal host (Node.host me) then local.Condition.fetch res
        else (
          match Hashtbl.find_opt t.nodes host with
          | None -> []
          | Some other ->
              t.remote_fetches <- t.remote_fetches + 1;
              let req_id = Message.fresh_req_id () in
              let get =
                Message.make ~from_host:(Node.host me) ~to_host:host ~sent_at:t.time
                  (Message.Get { req_id; path = Uri.path uri })
              in
              let doc = Store.doc (Node.store other) (Uri.path uri) in
              let resp =
                Message.make ~from_host:host ~to_host:(Node.host me) ~sent_at:t.time
                  (Message.Response { req_id; doc })
              in
              Transport.account_only t.transport get;
              Transport.account_only t.transport resp;
              Option.to_list doc)
    | Condition.View _ -> []
  in
  let fetch_rdf = function
    | Condition.Local _ as res -> local.Condition.fetch_rdf res
    | Condition.Remote uri as res ->
        let host = Uri.host uri in
        if host = "" || String.equal host (Node.host me) then local.Condition.fetch_rdf res
        else
          Option.bind (Hashtbl.find_opt t.nodes host) (fun other ->
              t.remote_fetches <- t.remote_fetches + 1;
              Store.rdf (Node.store other) (Uri.path uri))
    | Condition.View _ -> None
  in
  (* Only resources served by [me]'s own store take its memoized fast
     path; cross-host fetches must go through [fetch] so the GET/Response
     traffic stays accounted. *)
  let cached_match res ~seed q =
    match res with
    | Condition.Local _ -> local.Condition.cached_match res ~seed q
    | Condition.Remote uri ->
        let host = Uri.host uri in
        if host = "" || String.equal host (Node.host me) then
          local.Condition.cached_match res ~seed q
        else None
    | Condition.View _ -> None
  in
  { Condition.fetch; fetch_rdf; cached_match }

let context_for t me =
  {
    Node.env = env_for t me;
    send = (fun m -> Transport.send t.transport m);
    now = (fun () -> t.time);
  }

let inject t ?(sender = "external") ~to_ ~label ?ttl payload =
  let to_host = Uri.host to_ in
  let event = Event.make ~sender ~recipient:to_ ~occurred_at:t.time ?ttl ~label payload in
  Transport.send t.transport
    (Message.make ~from_host:sender ~to_host ~sent_at:t.time (Message.Event event))

let add_ticker t ?phase ~period f =
  let first = Clock.add t.time (Option.value ~default:period phase) in
  t.tickers <- t.tickers @ [ { period; next = first; f } ]

let enable_heartbeat t ~period =
  add_ticker t ~period (fun now ->
      Hashtbl.iter
        (fun _ n ->
          let ctx = context_for t n in
          ignore (Node.advance n ctx now))
        t.nodes)

let deliver t (m : Message.t) =
  match Hashtbl.find_opt t.nodes m.Message.to_host with
  | None -> () (* undeliverable: dropped, like the real Web *)
  | Some n -> (
      let ctx = context_for t n in
      match m.Message.body with
      | Message.Event e -> ignore (Node.receive_event n ctx e)
      | Message.Get { req_id; path } ->
          Node.receive_get n ctx ~from:m.Message.from_host ~req_id ~path
      | Message.Response { req_id; doc } -> Node.receive_response n ctx ~req_id doc
      | Message.Update u -> ignore (Node.receive_update n ctx ~from:m.Message.from_host u))

let next_ticker_time t =
  List.fold_left
    (fun acc tk -> match acc with None -> Some tk.next | Some x -> Some (min x tk.next))
    None t.tickers

let min_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y -> Some (min x y)

let run t ~until =
  let rec loop () =
    match min_opt (Transport.next_due t.transport) (next_ticker_time t) with
    | Some next when next <= until ->
        t.time <- max t.time next;
        (* deliveries first, then tickers due at the same instant *)
        List.iter (deliver t) (Transport.pop_due t.transport ~now:t.time);
        List.iter
          (fun tk ->
            if tk.next <= t.time then begin
              tk.next <- Clock.add tk.next tk.period;
              tk.f t.time
            end)
          t.tickers;
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  t.time <- max t.time until;
  Hashtbl.iter
    (fun _ n ->
      let ctx = context_for t n in
      ignore (Node.advance n ctx t.time))
    t.nodes;
  (* timer firings may have queued messages due exactly now *)
  List.iter (deliver t) (Transport.pop_due t.transport ~now:t.time)

let quiescent t = Transport.pending t.transport = 0

let run_until_quiet t ?(limit = 1_000_000_000) () =
  let rec loop () =
    match Transport.next_due t.transport with
    | Some next when next <= limit ->
        run t ~until:next;
        loop ()
    | Some _ | None -> t.time
  in
  loop ()
