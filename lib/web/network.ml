open Xchange_core
open Xchange_data
open Xchange_query
open Xchange_event
open Xchange_rules
open Xchange_obs

type fetch_policy = { timeout : Clock.span; retries : int }

let default_fetch_policy = { timeout = 60; retries = 2 }

type node_stats = {
  mutable events_in : int;
  mutable gets_in : int;
  mutable responses_in : int;
  mutable updates_in : int;
  mutable deferred_events : int;
  mutable fetches : int;
  mutable fetch_retries : int;
  mutable fetch_timeouts : int;
  mutable fetches_completed : int;
  mutable fetch_latency_total : Clock.span;
  mutable fetch_latency_max : Clock.span;
}

(* Registry cells behind one host's legacy [node_stats] view; the
   request-to-response latency histogram carries completion count, sum,
   and max in one cell. *)
type host_cells = {
  hc_events_in : Obs.Metrics.Counter.t;
  hc_gets_in : Obs.Metrics.Counter.t;
  hc_responses_in : Obs.Metrics.Counter.t;
  hc_updates_in : Obs.Metrics.Counter.t;
  hc_deferred : Obs.Metrics.Counter.t;
  hc_fetches : Obs.Metrics.Counter.t;
  hc_retries : Obs.Metrics.Counter.t;
  hc_timeouts : Obs.Metrics.Counter.t;
  hc_rtt : Obs.Metrics.Histogram.t;
}

(* What a node has fetched from the rest of the Web, latest value per
   (host, path, kind).  The snapshot a deferred delivery's condition
   evaluation reads from. *)
type snapshot = (string * string * Message.res_kind, Term.t option) Hashtbl.t

(* A ring entry: one delivery copy crossing partitions, carrying the
   sender transport's in-flight release hook. *)
type crossing = {
  x_msg : Message.t;
  x_dup : int;
  x_at : Clock.time;
  x_release : unit -> unit;
}

(* One partition: a private timeline, transport, and the subset of
   hosts assigned to it.  During a window only this partition's domain
   touches any of these fields; the coordinating domain reads and
   writes them exclusively between phases (the pool barrier provides
   the happens-before edges). *)
type part = {
  id : int;
  sched : Sched.t;
  transport : Transport.t;
  nodes : (string, Node.t) Hashtbl.t;
  cells_by_host : (string, host_cells) Hashtbl.t;
  snapshots : (string, snapshot) Hashtbl.t;
  m : Obs.Metrics.t;
  c_remote_fetches : Obs.Metrics.Counter.t;
  c_fallback_misses : Obs.Metrics.Counter.t;
  deadlines : (string, Clock.time) Hashtbl.t;
      (** earliest engine-deadline occurrence queued per host *)
  down : (string, Message.t Queue.t) Hashtbl.t;
      (** crashed hosts and the messages that arrived at their door while
          they were down: the network infrastructure survives a node
          crash, so nothing addressed to a dead host is lost — it is
          redelivered on recovery *)
  c_crashes : Obs.Metrics.Counter.t;
  c_recoveries : Obs.Metrics.Counter.t;
}

type t = {
  parts : part array;  (** length >= 1; length 1 = the sequential oracle *)
  directory : (string, Node.t) Hashtbl.t;  (** all hosts, whichever partition *)
  rings : crossing Partition.Ring.t array array;  (** [rings.(src).(dst)] *)
  policy : fetch_policy;
  lookahead : Clock.span option;  (** override; [None] = derive from latencies *)
  mutable window_rounds : int;  (** barrier rounds executed (observability) *)
  mutable window_crossings : int;  (** deliveries handed off across partitions *)
}

let partitions t = Array.length t.parts
let part_of t host = t.parts.(Partition.owner ~partitions:(partitions t) host)
let node t host = Hashtbl.find_opt t.directory host

let node_exn t host =
  match node t host with
  | Some n -> n
  | None -> invalid_arg ("Network.node_exn: unknown host " ^ host)

let hosts t = List.sort String.compare (Hashtbl.fold (fun h _ acc -> h :: acc) t.directory [])

(* Between driver calls every partition clock is equal (each run ends
   with all timelines advanced to the same instant). *)
let clock t = Sched.now t.parts.(0).sched
let sched t = t.parts.(0).sched

let sched_stats t =
  Array.fold_left
    (fun (acc : Sched.stats) p ->
      let s = Sched.stats p.sched in
      {
        Sched.scheduled = acc.Sched.scheduled + s.Sched.scheduled;
        executed = acc.Sched.executed + s.Sched.executed;
        max_queue = max acc.Sched.max_queue s.Sched.max_queue;
      })
    { Sched.scheduled = 0; executed = 0; max_queue = 0 }
    t.parts

let transport_stats t =
  Transport.merge_stats (Array.to_list (Array.map (fun p -> Transport.stats p.transport) t.parts))

let remote_fetches t =
  Array.fold_left (fun acc p -> acc + Obs.Metrics.Counter.value p.c_remote_fetches) 0 t.parts

let fallback_misses t =
  Array.fold_left (fun acc p -> acc + Obs.Metrics.Counter.value p.c_fallback_misses) 0 t.parts

let metrics t = t.parts.(0).m
let registry_for t ~host = (part_of t host).m

(* Recorded messages across all partition transports, restored to a
   deterministic order: send time, then sender stamp. *)
let trace t =
  let all = List.concat_map (fun p -> Transport.trace p.transport) (Array.to_list t.parts) in
  List.stable_sort
    (fun (a : Message.t) (b : Message.t) ->
      match Int.compare a.Message.sent_at b.Message.sent_at with
      | 0 -> (
          match String.compare a.Message.from_host b.Message.from_host with
          | 0 -> Int.compare a.Message.msg_id b.Message.msg_id
          | c -> c)
      | c -> c)
    all

let cells_for (p : part) host =
  match Hashtbl.find_opt p.cells_by_host host with
  | Some c -> c
  | None ->
      let labels = [ ("host", host) ] in
      let c =
        {
          hc_events_in = Obs.Metrics.counter p.m ~labels "node.events_in";
          hc_gets_in = Obs.Metrics.counter p.m ~labels "node.gets_in";
          hc_responses_in = Obs.Metrics.counter p.m ~labels "node.responses_in";
          hc_updates_in = Obs.Metrics.counter p.m ~labels "node.updates_in";
          hc_deferred = Obs.Metrics.counter p.m ~labels "node.deferred_events";
          hc_fetches = Obs.Metrics.counter p.m ~labels "node.fetches";
          hc_retries = Obs.Metrics.counter p.m ~labels "node.fetch_retries";
          hc_timeouts = Obs.Metrics.counter p.m ~labels "node.fetch_timeouts";
          hc_rtt = Obs.Metrics.histogram p.m ~labels "node.fetch_rtt_ms";
        }
      in
      Hashtbl.replace p.cells_by_host host c;
      c

let node_stats t host =
  let c = cells_for (part_of t host) host in
  {
    events_in = Obs.Metrics.Counter.value c.hc_events_in;
    gets_in = Obs.Metrics.Counter.value c.hc_gets_in;
    responses_in = Obs.Metrics.Counter.value c.hc_responses_in;
    updates_in = Obs.Metrics.Counter.value c.hc_updates_in;
    deferred_events = Obs.Metrics.Counter.value c.hc_deferred;
    fetches = Obs.Metrics.Counter.value c.hc_fetches;
    fetch_retries = Obs.Metrics.Counter.value c.hc_retries;
    fetch_timeouts = Obs.Metrics.Counter.value c.hc_timeouts;
    fetches_completed = Obs.Metrics.Histogram.count c.hc_rtt;
    fetch_latency_total = int_of_float (Obs.Metrics.Histogram.sum c.hc_rtt);
    fetch_latency_max = int_of_float (Obs.Metrics.Histogram.max c.hc_rtt);
  }

let snapshot_for (p : part) host =
  match Hashtbl.find_opt p.snapshots host with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 16 in
      Hashtbl.replace p.snapshots host s;
      s

(* A node's query environment: local names resolve against its own
   store; cross-host URIs against the node's fetched snapshots — what
   the prefetch round-trips brought back before this evaluation ran.
   No store on another host is ever read directly. *)
let env_for (p : part) (me : Node.t) =
  let local = Store.env (Node.store me) in
  let snap = snapshot_for p (Node.host me) in
  let lookup kind uri =
    match Hashtbl.find_opt snap (Uri.host uri, Uri.path uri, kind) with
    | Some doc -> doc
    | None ->
        Obs.Metrics.Counter.incr p.c_fallback_misses;
        None
  in
  let fetch = function
    | Condition.Local _ as res -> local.Condition.fetch res
    | Condition.Remote uri as res ->
        let host = Uri.host uri in
        if host = "" || String.equal host (Node.host me) then local.Condition.fetch res
        else Option.to_list (lookup Message.Doc uri)
    | Condition.View _ -> []
  in
  let fetch_rdf = function
    | Condition.Local _ as res -> local.Condition.fetch_rdf res
    | Condition.Remote uri as res ->
        let host = Uri.host uri in
        if host = "" || String.equal host (Node.host me) then local.Condition.fetch_rdf res
        else
          Option.bind (lookup Message.Rdf uri) (fun term ->
              match Rdf.graph_of_term term with Ok g -> Some g | Error _ -> None)
    | Condition.View _ -> None
  in
  (* only resources served by [me]'s own store take its memoized fast
     path; snapshot reads are already cheap *)
  let cached_match res ~seed q =
    match res with
    | Condition.Local _ -> local.Condition.cached_match res ~seed q
    | Condition.Remote uri ->
        let host = Uri.host uri in
        if host = "" || String.equal host (Node.host me) then
          local.Condition.cached_match res ~seed q
        else None
    | Condition.View _ -> None
  in
  { Condition.fetch; fetch_rdf; cached_match }

let part_context (p : part) me =
  {
    Node.env = env_for p me;
    send = (fun m -> Transport.send p.transport m);
    now = (fun () -> Sched.now p.sched);
  }

let context_for t me = part_context (part_of t (Node.host me)) me

(* One Get/Response round-trip with retry-on-timeout.  The continuation
   runs exactly once: on the first Response (late duplicates find their
   handler gone), or with [None] after the last retry times out.
   Successful responses also land in the requester's snapshot table.
   Timeout occurrences hold the simulation open — a dropped Response
   must still trigger its retry under [run_until_quiet]. *)
let fetch_round_trip t (p : part) (me : Node.t) ~kind ~uri k =
  let to_host = Uri.host uri and path = Uri.path uri in
  let me_host = Node.host me in
  if not (Hashtbl.mem t.directory to_host) then k None (Sched.now p.sched)
  else begin
    let cells = cells_for p me_host in
    Obs.Metrics.Counter.incr p.c_remote_fetches;
    Obs.Metrics.Counter.incr cells.hc_fetches;
    let started = Sched.now p.sched in
    let fetch_span =
      if Obs.enabled () then
        Obs.Trace.instant ~cat:"net"
          ~args:[ ("uri", uri); ("by", me_host) ]
          ~name:"fetch" ~vt:started ()
      else 0
    in
    let done_ = ref false in
    let rec attempt n =
      let req_id = Node.fresh_req_id me in
      let cancel_timeout = ref (fun () -> ()) in
      Node.expect_response me ~req_id (fun doc at ->
          !cancel_timeout ();
          if not !done_ then begin
            done_ := true;
            let rtt = at - started in
            Obs.Metrics.Histogram.observe cells.hc_rtt (float_of_int rtt);
            Hashtbl.replace (snapshot_for p me_host) (to_host, path, kind) doc;
            k doc at
          end);
      Obs.Trace.run_under fetch_span (fun () ->
          Transport.send p.transport
            (Message.make ~msg_id:(Node.fresh_msg_id me) ~from_host:me_host ~to_host
               ~sent_at:(Sched.now p.sched)
               (Message.Get { req_id; path; kind })));
      cancel_timeout :=
        Sched.cancellable p.sched ~holds:true
          (Clock.add (Sched.now p.sched) t.policy.timeout)
          (fun at ->
            Node.forget_response me ~req_id;
            if not !done_ then
              if n < t.policy.retries then begin
                Obs.Metrics.Counter.incr cells.hc_retries;
                attempt (n + 1)
              end
              else begin
                done_ := true;
                Obs.Metrics.Counter.incr cells.hc_timeouts;
                (* no snapshot write: a stale earlier value beats
                   overwriting it with "unreachable" *)
                k None at
              end)
    in
    attempt 0
  end

let fetch t ~me ?(kind = Message.Doc) ~uri k =
  match node t me with
  | None -> invalid_arg ("Network.fetch: unknown host " ^ me)
  | Some n -> fetch_round_trip t (part_of t me) n ~kind ~uri k

(* The cross-host slice of an engine's static dependency set: what must
   be round-tripped before the node may react. *)
let cross_deps t (n : Node.t) deps =
  let me = Node.host n in
  List.filter
    (fun ((_ : [ `Doc | `Rdf ]), uri) ->
      let h = Uri.host uri in
      h <> "" && (not (String.equal h me)) && Hashtbl.mem t.directory h)
    deps

(* Refresh every listed dependency, then run [process] — immediately
   when there is nothing to fetch, otherwise inside the occurrence that
   completes the last round-trip (so the reaction is delayed by real
   network time). *)
let with_remote_snapshot t (p : part) (n : Node.t) deps process =
  match deps with
  | [] -> process ()
  | deps ->
      Obs.Metrics.Counter.incr (cells_for p (Node.host n)).hc_deferred;
      let remaining = ref (List.length deps) in
      List.iter
        (fun (rk, uri) ->
          let kind = match rk with `Doc -> Message.Doc | `Rdf -> Message.Rdf in
          fetch_round_trip t p n ~kind ~uri (fun _doc _at ->
              decr remaining;
              if !remaining = 0 then process ()))
        deps

(* Engine absence deadlines become occurrences of their own, so a rule
   like "no rebooking within 2h" fires at its due time, not at the next
   heartbeat.  Non-holding: an armed timer alone does not keep
   [run_until_quiet] going (exactly like tickers). *)
let rec advance_node t (p : part) (n : Node.t) time =
  if Hashtbl.mem p.down (Node.host n) then () (* a dead node has no clock *)
  else
  let deps = cross_deps t n (Engine.clocked_remote_resources (Node.engine n)) in
  with_remote_snapshot t p n deps (fun () ->
      let ctx = part_context p n in
      let time = max time (Sched.now p.sched) in
      ignore (Node.advance n ctx time);
      (* requeue only deadlines the advance left in the future — one the
         engine failed to clear must not spin the scheduler *)
      match Engine.next_deadline (Node.engine n) with
      | Some d when d > time -> schedule_deadline t p n d
      | Some _ | None -> ())

and schedule_deadline t (p : part) (n : Node.t) due =
  let host = Node.host n in
  let worthwhile =
    match Hashtbl.find_opt p.deadlines host with Some d -> due < d | None -> true
  in
  if worthwhile then begin
    Hashtbl.replace p.deadlines host due;
    Sched.at p.sched ~holds:false due (fun at ->
        (match Hashtbl.find_opt p.deadlines host with
        | Some d when d = due -> Hashtbl.remove p.deadlines host
        | _ -> ());
        advance_node t p n at)
  end

let schedule_engine_deadline t (p : part) (n : Node.t) =
  match Engine.next_deadline (Node.engine n) with
  | None -> ()
  | Some due -> schedule_deadline t p n due

let deliver t (p : part) (m : Message.t) =
  match Hashtbl.find_opt p.down m.Message.to_host with
  | Some q -> Queue.push m q (* host is down: held at the door until recovery *)
  | None ->
  match Hashtbl.find_opt p.nodes m.Message.to_host with
  | None -> () (* undeliverable: dropped, like the real Web *)
  | Some n ->
      let cells = cells_for p m.Message.to_host in
      let ctx = part_context p n in
      let span =
        if Obs.enabled () then
          Obs.Trace.begin_span ~cat:"net"
            ~args:
              [
                ("kind", Transport.body_kind m);
                ("from", m.Message.from_host);
                ("to", m.Message.to_host);
              ]
            ~name:"message" ~vt:(Sched.now p.sched) ()
        else 0
      in
      (match m.Message.body with
      | Message.Event e ->
          Obs.Metrics.Counter.incr cells.hc_events_in;
          let deps = cross_deps t n (Engine.remote_resources (Node.engine n)) in
          with_remote_snapshot t p n deps (fun () ->
              ignore (Node.receive_event n ctx e);
              schedule_engine_deadline t p n)
      | Message.Get { req_id; path; kind } ->
          Obs.Metrics.Counter.incr cells.hc_gets_in;
          Node.receive_get n ctx ~from:m.Message.from_host ~req_id ~path ~kind
      | Message.Response { req_id; doc } ->
          Obs.Metrics.Counter.incr cells.hc_responses_in;
          Node.receive_response n ctx ~req_id doc
      | Message.Update u ->
          Obs.Metrics.Counter.incr cells.hc_updates_in;
          let deps = cross_deps t n (Engine.remote_resources (Node.engine n)) in
          with_remote_snapshot t p n deps (fun () ->
              ignore
                (Node.receive_update n ctx ~from:m.Message.from_host ~msg_id:m.Message.msg_id u);
              schedule_engine_deadline t p n));
      Obs.Trace.end_span span ~vt:(Sched.now p.sched)

let effective_domains ?domains () =
  if Escape.no_par then 1
  else max 1 (match domains with Some d -> d | None -> Option.value ~default:1 Escape.domains)

let create ?latency ?drop ?faults ?record ?(fetch_policy = default_fetch_policy) ?domains
    ?lookahead () =
  let p_count = effective_domains ?domains () in
  let parts =
    Array.init p_count (fun id ->
        let sched = Sched.create () in
        let m = Obs.Metrics.create () in
        {
          id;
          sched;
          transport = Transport.create ~sched ?latency ?drop ?faults ?record ();
          nodes = Hashtbl.create 8;
          cells_by_host = Hashtbl.create 8;
          snapshots = Hashtbl.create 8;
          m;
          c_remote_fetches = Obs.Metrics.counter m "net.remote_fetches";
          c_fallback_misses = Obs.Metrics.counter m "net.fallback_misses";
          deadlines = Hashtbl.create 8;
          down = Hashtbl.create 4;
          c_crashes = Obs.Metrics.counter m "net.crashes";
          c_recoveries = Obs.Metrics.counter m "net.recoveries";
        })
  in
  let rings =
    Array.init p_count (fun _ -> Array.init p_count (fun _ -> Partition.Ring.create ()))
  in
  let t =
    {
      parts;
      directory = Hashtbl.create 8;
      rings;
      policy = fetch_policy;
      lookahead;
      window_rounds = 0;
      window_crossings = 0;
    }
  in
  Array.iter
    (fun p ->
      Transport.on_deliver p.transport (deliver t p);
      if p_count > 1 then
        Transport.on_handoff p.transport (fun m ~dup ~at ~release ->
            let dst = Partition.owner ~partitions:p_count m.Message.to_host in
            if dst = p.id then false
            else begin
              Partition.Ring.push t.rings.(p.id).(dst)
                { x_msg = m; x_dup = dup; x_at = at; x_release = release };
              true
            end))
    parts;
  t

let add_node t node =
  let h = Node.host node in
  if Hashtbl.mem t.directory h then Error ("duplicate host " ^ h)
  else begin
    Hashtbl.replace t.directory h node;
    Hashtbl.replace (part_of t h).nodes h node;
    Ok ()
  end

let add_node_exn t node =
  match add_node t node with
  | Ok () -> ()
  | Error e -> invalid_arg ("Network.add_node: " ^ e)

(* Fault injection: kill a host's node process at a deterministic
   virtual time and (optionally) bring it back up later.  Both
   occurrences run on the owner partition's timeline, so crash/restart
   interleaves with deliveries identically across sequential and
   sharded runs.  Holding occurrences: a pending recovery keeps
   [run_until_quiet] going. *)
let schedule_crash t ~host ~at ?recover_at () =
  match node t host with
  | None -> invalid_arg ("Network.schedule_crash: unknown host " ^ host)
  | Some n ->
      (match recover_at with
      | Some rt when rt <= at ->
          invalid_arg "Network.schedule_crash: recover_at must be after at"
      | _ -> ());
      let p = part_of t host in
      Sched.at p.sched ~holds:true at (fun _now ->
          if not (Hashtbl.mem p.down host) then begin
            Hashtbl.replace p.down host (Queue.create ());
            Obs.Metrics.Counter.incr p.c_crashes;
            (* queued deadline occurrences for this host die with it;
               recovery re-arms from the rebuilt engine *)
            Hashtbl.remove p.deadlines host;
            Node.crash n
          end);
      match recover_at with
      | None -> ()
      | Some rt ->
          Sched.at p.sched ~holds:true rt (fun _now ->
              match Hashtbl.find_opt p.down host with
              | None -> ()
              | Some held ->
                  Hashtbl.remove p.down host;
                  Obs.Metrics.Counter.incr p.c_recoveries;
                  (match Node.recover n (part_context p n) with
                  | Ok _ -> ()
                  | Error _ -> () (* recovery problems are on the node's error list *));
                  (* the messages the Web held at the door while the host
                     was down arrive now, in their original order *)
                  Queue.iter (fun m -> deliver t p m) held;
                  schedule_engine_deadline t p n)

let crashes t =
  Array.fold_left (fun acc p -> acc + Obs.Metrics.Counter.value p.c_crashes) 0 t.parts

let recoveries t =
  Array.fold_left (fun acc p -> acc + Obs.Metrics.Counter.value p.c_recoveries) 0 t.parts

(* Whole-system snapshot: every partition's scheduler, transport, and
   network registries, plus every node's store and engine, stamped with
   the host they belong to.  [Obs.Metrics.merge] sums samples that
   agree on (name, labels), so the partitioned and sequential runs
   produce the same schema.  One schema for tests, the bench artifacts,
   and the CLI. *)
let metrics_snapshot t =
  let per_node =
    Hashtbl.fold
      (fun host n acc ->
        let labels = [ ("host", host) ] in
        Obs.Metrics.snapshot ~labels (Store.metrics (Node.store n))
        :: Obs.Metrics.snapshot ~labels (Engine.metrics (Node.engine n))
        :: Obs.Metrics.snapshot ~labels (Node.metrics n)
        :: acc)
      t.directory []
  in
  let per_part =
    List.concat_map
      (fun p ->
        [
          Obs.Metrics.snapshot (Sched.metrics p.sched);
          Obs.Metrics.snapshot (Transport.metrics p.transport);
          Obs.Metrics.snapshot p.m;
        ])
      (Array.to_list t.parts)
  in
  Obs.Metrics.merge (per_part @ per_node)

let metrics_json t = Json.to_string ~pretty:true (Obs.Metrics.to_json (metrics_snapshot t))

let inject t ?(sender = "external") ~to_ ~label ?ttl payload =
  (* routed through the destination's own partition: an injection is
     already on the right timeline, so it never crosses a ring and
     needs no lookahead guarantee.  The global fallback id counters are
     only ever touched here (and by harness code), always on the
     coordinating domain in program order — identical across modes. *)
  let p = part_of t (Uri.host to_) in
  let now = Sched.now p.sched in
  let to_host = Uri.host to_ in
  let event = Event.make ~sender ~recipient:to_ ~occurred_at:now ?ttl ~label payload in
  Transport.send p.transport
    (Message.make ~from_host:sender ~to_host ~sent_at:now (Message.Event event))

let add_ticker t ?host ?phase ~period f =
  let p = match host with Some h -> part_of t h | None -> t.parts.(0) in
  Sched.every p.sched ?phase ~period f

let enable_heartbeat t ~period =
  Array.iter
    (fun p ->
      Sched.every p.sched ~period (fun now ->
          Hashtbl.iter (fun _ n -> advance_node t p n now) p.nodes))
    t.parts

let quiescent t = Array.for_all (fun p -> Sched.pending p.sched = 0) t.parts

let min_opt a b = match (a, b) with None, x | x, None -> x | Some x, Some y -> Some (min x y)

let global_next_due t =
  Array.fold_left (fun acc p -> min_opt acc (Sched.next_due p.sched)) None t.parts

let global_next_holding t =
  Array.fold_left (fun acc p -> min_opt acc (Sched.next_holding p.sched)) None t.parts

(* The conservative lookahead: the minimum link latency over ordered
   host pairs that live on different partitions.  A message sent during
   a window [T, T+L) departs at or after T and arrives at or after
   T + L — at or after the window's end — so executing the window on
   every partition concurrently can never miss a cross-partition
   delivery.  [max_int] (no cross-partition pair) collapses the window
   to the whole run. *)
let conservative_lookahead t =
  match t.lookahead with
  | Some l -> max 1 l
  | None ->
      if partitions t = 1 then max_int
      else
        Array.fold_left
          (fun acc (p : part) ->
            Hashtbl.fold
              (fun from _ acc ->
                Array.fold_left
                  (fun acc (q : part) ->
                    if q.id = p.id then acc
                    else
                      Hashtbl.fold
                        (fun to_ _ acc ->
                          min acc (Transport.latency p.transport ~from ~to_))
                        q.nodes acc)
                  acc t.parts)
              p.nodes acc)
          max_int t.parts

exception Causality of string

(* Inject every crossing accumulated during the last window on its
   destination timeline.  Runs on the coordinating domain at the
   barrier, when no partition is executing. *)
let drain_rings t =
  Array.iter
    (fun row ->
      Array.iteri
        (fun dst ring ->
          match Partition.Ring.drain ring with
          | [] -> ()
          | crossings ->
              let q = t.parts.(dst) in
              List.iter
                (fun { x_msg; x_dup; x_at; x_release } ->
                  t.window_crossings <- t.window_crossings + 1;
                  if x_at < Sched.now q.sched then
                    raise
                      (Causality
                         (Fmt.str
                            "delivery %s->%s at %d behind partition %d clock %d (lookahead \
                             exceeds a link latency)"
                            x_msg.Message.from_host x_msg.Message.to_host x_at dst
                            (Sched.now q.sched)));
                  Transport.inject q.transport x_msg ~dup:x_dup ~at:x_at ~release:x_release)
                crossings)
        row)
    t.rings

(* Run every partition's timeline through conservative windows until no
   occurrence at or before [until] remains, then leave all clocks at
   [until].  [phase] executes one job per partition with a full barrier
   (in parallel on the pool, or inline when sequential / tracing). *)
let windows t phase ~until =
  let lookahead = conservative_lookahead t in
  let rec go () =
    match global_next_due t with
    | Some next_due when next_due <= until ->
        let stop = Partition.window_stop ~next_due ~lookahead ~until in
        (* an unbounded window (infinite lookahead, or one covering the
           whole call) is not a synchronisation round *)
        if stop < until then t.window_rounds <- t.window_rounds + 1;
        phase (fun i -> Sched.run_until t.parts.(i).sched stop);
        drain_rings t;
        go ()
    | Some _ | None -> Array.iter (fun p -> Sched.run_until p.sched until) t.parts
  in
  go ()

let run_phases t phase ~until =
  windows t phase ~until;
  (* timer phase: advance every node's engine to [until]; firings may
     send messages or schedule deliveries due exactly now *)
  phase (fun i ->
      let p = t.parts.(i) in
      Hashtbl.iter (fun _ n -> advance_node t p n until) p.nodes);
  drain_rings t;
  windows t phase ~until

(* Phase executor.  Parallel execution is the vehicle, not the
   semantics: the inline executor runs the exact same phases in
   partition order, and is used when there is a single partition, when
   tracing is on (the trace buffer is global and unsynchronised), and
   under [XCHANGE_NO_PAR=1]. *)
let with_phase t f =
  let p_count = partitions t in
  if p_count = 1 || Obs.enabled () then
    f (fun job ->
        for i = 0 to p_count - 1 do
          job i
        done)
  else
    Partition.Pool.with_pool ~workers:(p_count - 1) (fun pool ->
        f (fun job -> Partition.Pool.phase pool job))

let run t ~until = with_phase t (fun phase -> run_phases t phase ~until)

let run_until_quiet t ?(limit = 1_000_000_000) () =
  with_phase t (fun phase ->
      let rec loop () =
        match global_next_holding t with
        | Some next when next <= limit ->
            run_phases t phase ~until:next;
            loop ()
        | Some _ | None -> ()
      in
      loop ());
  clock t

let window_rounds t = t.window_rounds
let window_crossings t = t.window_crossings
