open Xchange_data
open Xchange_query
open Xchange_rules

let subscribers_doc = "/subscribers"

let empty_register () = Term.elem ~ord:Term.Unordered "subscribers" []

let topic_host_pattern label =
  Qterm.el label
    [
      Qterm.pos (Qterm.el "topic" [ Qterm.pos (Qterm.var "T") ]);
      Qterm.pos (Qterm.el "host" [ Qterm.pos (Qterm.var "H") ]);
    ]

let sub_entry_q =
  Qterm.el "sub"
    [
      Qterm.pos (Qterm.el "topic" [ Qterm.pos (Qterm.var "T") ]);
      Qterm.pos (Qterm.el "host" [ Qterm.pos (Qterm.var "H") ]);
    ]

let sub_entry_c =
  Construct.cel "sub"
    [
      Construct.cel "topic" [ Construct.cvar "T" ];
      Construct.cel "host" [ Construct.cvar "H" ];
    ]

let subscribe_rule =
  (* idempotent: drop any previous entry for (T, H) first *)
  Eca.make ~name:"subscribe"
    ~on:(Xchange_event.Event_query.on ~label:"subscribe" (topic_host_pattern "subscribe"))
    (Action.seq
       [
         Action.delete ~doc:subscribers_doc ~pattern:sub_entry_q ();
         Action.insert ~doc:subscribers_doc sub_entry_c;
       ])

let unsubscribe_rule =
  Eca.make ~name:"unsubscribe"
    ~on:(Xchange_event.Event_query.on ~label:"unsubscribe" (topic_host_pattern "unsubscribe"))
    (Action.delete ~doc:subscribers_doc ~pattern:sub_entry_q ())

let fanout_rule =
  (* one firing per subscriber answer: the per-answer ECA semantics does
     the fan-out *)
  let on_publish =
    Xchange_event.Event_query.on ~label:"publish"
      (Qterm.el "publish"
         [
           Qterm.pos (Qterm.el "topic" [ Qterm.pos (Qterm.var "T") ]);
           Qterm.pos (Qterm.As ("B", Qterm.el "body" []));
         ])
  in
  let subscriber_condition =
    Condition.In
      ( Condition.Local subscribers_doc,
        Qterm.el "sub"
          [
            Qterm.pos (Qterm.el "topic" [ Qterm.pos (Qterm.var "T") ]);
            Qterm.pos (Qterm.el "host" [ Qterm.pos (Qterm.var "H") ]);
          ] )
  in
  Eca.make ~name:"fan-out" ~on:on_publish ~if_:subscriber_condition
    (Action.raise_event_to ~to_:(Builtin.ovar "H") ~label:"notify"
       (Construct.cel "notify"
          [ Construct.cel "topic" [ Construct.cvar "T" ]; Construct.cvar "B" ]))

let publisher_ruleset ?(name = "pubsub") () =
  Ruleset.make ~rules:[ subscribe_rule; unsubscribe_rule; fanout_rule ] name

let subscribe ~topic ~host =
  Term.elem "subscribe" [ Term.elem "topic" [ Term.text topic ]; Term.elem "host" [ Term.text host ] ]

let unsubscribe ~topic ~host =
  Term.elem "unsubscribe" [ Term.elem "topic" [ Term.text topic ]; Term.elem "host" [ Term.text host ] ]

let publish ~topic body =
  Term.elem "publish" [ Term.elem "topic" [ Term.text topic ]; Term.elem "body" [ body ] ]

(* the topic-grounded register query ([subscribers]'s oracle shape) *)
let subscribers_q topic =
  Qterm.el "sub"
    [
      Qterm.pos (Qterm.el "topic" [ Qterm.pos (Qterm.txt topic) ]);
      Qterm.pos (Qterm.el "host" [ Qterm.pos (Qterm.var "H") ]);
    ]

let hosts_of_answers answers =
  List.filter_map (fun s -> Option.bind (Subst.find "H" s) Term.as_text) answers
  |> List.sort_uniq String.compare

(* ---- subscription registry ------------------------------------------- *)

module Registry = struct
  (* Each live (topic, host) pair is registered in the sub-index as the
     query its notification must answer —
     [publish{topic{"<topic>"}}] — so a publish payload looks up only
     the subscribers its topic can satisfy (the topic literal is the
     trie's pivot leaf).  The payload carried by the registration is the
     host. *)
  type t = {
    index : string Sub_index.t;
    ids : (string * string, int) Hashtbl.t;  (* (topic, host) -> registration *)
    mutable dirty : bool;  (* register doc changed in an unrecognised way *)
    mutable exotic : bool;
        (* the register holds entries that are not plain root-level
           (topic, host) text pairs — fast paths off until that clears *)
    mutable store : Store.t option;  (* Some once attached *)
  }

  let subscription_q topic =
    Qterm.el "publish" [ Qterm.pos (Qterm.el "topic" [ Qterm.pos (Qterm.txt topic) ]) ]

  let publish_probe topic =
    Term.elem "publish" [ Term.elem "topic" [ Term.text topic ] ]

  let create () =
    {
      index = Sub_index.create ();
      ids = Hashtbl.create 64;
      dirty = false;
      exotic = false;
      store = None;
    }

  let size reg = Hashtbl.length reg.ids
  let stats reg = Sub_index.stats reg.index
  let metrics reg = Sub_index.metrics reg.index
  let exotic reg = reg.exotic
  let synced reg = (not reg.dirty) && not reg.exotic

  let subscribe reg ~topic ~host =
    if not (Hashtbl.mem reg.ids (topic, host)) then
      Hashtbl.replace reg.ids (topic, host)
        (Sub_index.register reg.index (subscription_q topic) host)

  let unsubscribe reg ~topic ~host =
    match Hashtbl.find_opt reg.ids (topic, host) with
    | None -> false
    | Some id ->
        Hashtbl.remove reg.ids (topic, host);
        ignore (Sub_index.remove reg.index id);
        true

  let clear reg =
    Hashtbl.iter (fun _ id -> ignore (Sub_index.remove reg.index id)) reg.ids;
    Hashtbl.reset reg.ids

  let pair_subst (t, h) =
    Option.get (Subst.of_list [ ("T", Term.text t); ("H", Term.text h) ])

  (* Rebuild the mirror from the register document.  The mirror is used
     only when every register answer comes from a root-level entry that
     denotes exactly one (Text, Text) pair; anything else (nested or
     multi-answer entries, non-text topics/hosts) sets [exotic] and the
     document stays the source of truth. *)
  let resync reg =
    clear reg;
    reg.dirty <- false;
    reg.exotic <- false;
    match Option.bind reg.store (fun store -> Store.doc store subscribers_doc) with
    | None -> ()
    | Some d ->
        let pairs = ref [] in
        List.iter
          (fun c ->
            match Simulate.matches sub_entry_q c with
            | [] -> ()
            | [ s ] -> (
                match (Subst.find "T" s, Subst.find "H" s) with
                | Some (Term.Text t), Some (Term.Text h) -> pairs := (t, h) :: !pairs
                | _ -> reg.exotic <- true)
            | _ -> reg.exotic <- true)
          (Term.children d);
        if not reg.exotic then begin
          let mirrored = Subst.dedup (List.map pair_subst !pairs) in
          let actual = Simulate.matches_anywhere sub_entry_q d in
          if
            List.length mirrored = List.length actual
            && List.for_all2 Subst.equal mirrored actual
          then List.iter (fun (t, h) -> subscribe reg ~topic:t ~host:h) !pairs
          else reg.exotic <- true
        end

  let sync reg = if reg.dirty then resync reg

  (* hosts whose registered subscription query confirms against the term *)
  let confirmed_hosts reg term =
    Sub_index.matching reg.index term
    |> List.map (fun (_, h, _) -> h)
    |> List.sort_uniq String.compare

  let oracle_subscribers store ~topic =
    match Store.doc store subscribers_doc with
    | None -> []
    | Some register -> hosts_of_answers (Simulate.matches_anywhere (subscribers_q topic) register)

  (* oracle for arbitrary publish payloads: every text pair the register
     answers, kept when its subscription query holds on the payload *)
  let oracle_match_publish store payload =
    match Store.doc store subscribers_doc with
    | None -> []
    | Some register ->
        Simulate.matches_anywhere sub_entry_q register
        |> List.filter_map (fun s ->
               match
                 ( Option.bind (Subst.find "T" s) Term.as_text,
                   Option.bind (Subst.find "H" s) Term.as_text )
               with
               | Some t, Some h when Simulate.holds (subscription_q t) payload -> Some h
               | _ -> None)
        |> List.sort_uniq String.compare

  let subscribers reg ~topic =
    sync reg;
    if reg.exotic then
      match reg.store with Some store -> oracle_subscribers store ~topic | None -> []
    else confirmed_hosts reg (publish_probe topic)

  let match_publish reg payload =
    sync reg;
    if reg.exotic then
      match reg.store with Some store -> oracle_match_publish store payload | None -> []
    else confirmed_hosts reg payload

  (* ---- store integration ---- *)

  (* the delete pattern the subscribe/unsubscribe rules produce once the
     engine has grounded T and H ([Action] seeds bound variables as
     [Text_is] leaves) *)
  let grounded_pair q =
    match q with
    | Qterm.El
        {
          label = Qterm.L "sub";
          children =
            [
              Qterm.Pos
                (Qterm.El
                   { label = Qterm.L "topic"; children = [ Qterm.Pos (Qterm.Leaf (Qterm.Text_is t)) ]; _ });
              Qterm.Pos
                (Qterm.El
                   { label = Qterm.L "host"; children = [ Qterm.Pos (Qterm.Leaf (Qterm.Text_is h)) ]; _ });
            ];
          _;
        }
      when q
           = Qterm.el "sub"
               [
                 Qterm.pos (Qterm.el "topic" [ Qterm.pos (Qterm.Leaf (Qterm.Text_is t)) ]);
                 Qterm.pos (Qterm.el "host" [ Qterm.pos (Qterm.Leaf (Qterm.Text_is h)) ]);
               ] ->
        Some (t, h)
    | _ -> None

  (* content inserted at the register root that is itself one clean
     entry: rooted match and anywhere-match agree on a single text pair *)
  let clean_entry content =
    match
      (Simulate.matches sub_entry_q content, Simulate.matches_anywhere sub_entry_q content)
    with
    | [], [] -> `Inert
    | [ s ], [ s' ] when Subst.equal s s' -> (
        match (Subst.find "T" s, Subst.find "H" s) with
        | Some (Term.Text t), Some (Term.Text h) -> `Pair (t, h)
        | _ -> `Unrecognised)
    | _ -> `Unrecognised

  let observe reg ch =
    if not reg.dirty then
      if reg.exotic then begin
        (* degraded mode: any further register change re-triggers the
           full resync, which may find the register clean again *)
        match ch with
        | Store.Ch_update u when String.equal (Action.update_doc u) subscribers_doc ->
            reg.dirty <- true
        | Store.Ch_doc name when String.equal name subscribers_doc -> reg.dirty <- true
        | Store.Ch_restore -> reg.dirty <- true
        | Store.Ch_update _ | Store.Ch_doc _ -> ()
      end
      else
        match ch with
        | Store.Ch_update (Action.U_insert { doc; selector = []; content; at = _ })
          when String.equal doc subscribers_doc -> (
            match clean_entry content with
            | `Pair (t, h) -> subscribe reg ~topic:t ~host:h
            | `Inert -> ()
            | `Unrecognised -> reg.dirty <- true)
        | Store.Ch_update (Action.U_delete { doc; selector = []; pattern = Some q })
          when String.equal doc subscribers_doc -> (
            match grounded_pair q with
            | Some (t, h) -> ignore (unsubscribe reg ~topic:t ~host:h)
            | None -> reg.dirty <- true)
        | Store.Ch_update u when String.equal (Action.update_doc u) subscribers_doc ->
            reg.dirty <- true
        | Store.Ch_update _ -> ()
        | Store.Ch_doc name -> if String.equal name subscribers_doc then reg.dirty <- true
        | Store.Ch_restore -> reg.dirty <- true

  (* the [Store.query] fast path: serve the two register query shapes
     the rules and [subscribers] use; anything else falls back *)
  let answer reg ~seed q =
    sync reg;
    if reg.exotic then None
    else if q = sub_entry_q then
      match Subst.find "T" seed with
      | Some (Term.Text t) ->
          Some
            (Subst.dedup
               (List.filter_map
                  (fun h -> Subst.add "H" (Term.text h) seed)
                  (confirmed_hosts reg (publish_probe t))))
      | Some _ ->
          (* a non-text topic binding cannot equal any mirrored entry *)
          Some Subst.set_empty
      | None ->
          Some
            (Subst.dedup
               (Hashtbl.fold
                  (fun (t, h) _ acc ->
                    match
                      Option.bind (Subst.add "T" (Term.text t) seed) (Subst.add "H" (Term.text h))
                    with
                    | Some s -> s :: acc
                    | None -> acc)
                  reg.ids []))
    else
      match q with
      | Qterm.El
          {
            label = Qterm.L "sub";
            children =
              Qterm.Pos
                (Qterm.El
                   { label = Qterm.L "topic"; children = [ Qterm.Pos (Qterm.Leaf (Qterm.Text_is t)) ]; _ })
              :: _;
            _;
          }
        when q = subscribers_q t ->
          Some
            (Subst.dedup
               (List.filter_map
                  (fun h -> Subst.add "H" (Term.text h) seed)
                  (confirmed_hosts reg (publish_probe t))))
      | _ -> None

  let attach store =
    let reg = create () in
    reg.store <- Some store;
    reg.dirty <- true;
    Store.on_change store (observe reg);
    if Sub_index.enabled () then Store.set_dynamic store subscribers_doc (answer reg);
    reg
end

let subscribers ?(index = true) store ~topic =
  if not index then Registry.oracle_subscribers store ~topic
  else hosts_of_answers (Store.query store ~doc:subscribers_doc (subscribers_q topic))
