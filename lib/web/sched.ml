open Xchange_event

type stats = {
  mutable scheduled : int;
  mutable executed : int;
  mutable max_queue : int;
}

module Key = struct
  type t = Clock.time * int

  let compare = Stdlib.compare
end

module Q = Map.Make (Key)

type entry = {
  holds : bool;
  run : Clock.time -> unit;
}

type t = {
  mutable now : Clock.time;
  mutable queue : entry Q.t;
  mutable seq : int;
  mutable holding : int;
  s : stats;
}

let create ?(origin = Clock.origin) () =
  {
    now = origin;
    queue = Q.empty;
    seq = 0;
    holding = 0;
    s = { scheduled = 0; executed = 0; max_queue = 0 };
  }

let now t = t.now

let enqueue t ~holds time run =
  let time = max time t.now in
  t.seq <- t.seq + 1;
  let key = (time, t.seq) in
  t.queue <- Q.add key { holds; run } t.queue;
  if holds then t.holding <- t.holding + 1;
  let len = Q.cardinal t.queue in
  if len > t.s.max_queue then t.s.max_queue <- len;
  key

let at t ?(holds = true) time f =
  t.s.scheduled <- t.s.scheduled + 1;
  ignore (enqueue t ~holds time f)

let cancellable t ?(holds = true) time f =
  t.s.scheduled <- t.s.scheduled + 1;
  let key = enqueue t ~holds time f in
  fun () ->
    match Q.find_opt key t.queue with
    | None -> () (* already executed (or already cancelled) *)
    | Some e ->
        t.queue <- Q.remove key t.queue;
        if e.holds then t.holding <- t.holding - 1

let after t ?holds span f = at t ?holds (Clock.add t.now span) f

let every t ?phase ~period f =
  let period = max 1 period in
  let rec tick time =
    f time;
    ignore (enqueue t ~holds:false (Clock.add time period) tick)
  in
  ignore (enqueue t ~holds:false (Clock.add t.now (Option.value ~default:period phase)) tick)

let next_due t = Option.map (fun ((time, _), _) -> time) (Q.min_binding_opt t.queue)

let next_holding t =
  (* holding occurrences are rare enough that a scan is fine; the queue
     is ordered, so the first holding binding is the earliest *)
  Q.fold
    (fun (time, _) e acc ->
      match acc with Some _ -> acc | None -> if e.holds then Some time else None)
    t.queue None

let pending t = t.holding
let queue_length t = Q.cardinal t.queue

let exec t key e =
  t.queue <- Q.remove key t.queue;
  if e.holds then t.holding <- t.holding - 1;
  let time = fst key in
  if time > t.now then t.now <- time;
  t.s.executed <- t.s.executed + 1;
  e.run t.now

let run_until t until =
  let rec loop () =
    match Q.min_binding_opt t.queue with
    | Some (((time, _) as key), e) when time <= until ->
        exec t key e;
        loop ()
    | _ -> ()
  in
  loop ();
  if until > t.now then t.now <- until

let step t =
  match Q.min_binding_opt t.queue with
  | None -> false
  | Some (key, e) ->
      exec t key e;
      true

let stats t = t.s
