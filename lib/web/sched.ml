open Xchange_event
open Xchange_obs

type stats = {
  mutable scheduled : int;
  mutable executed : int;
  mutable max_queue : int;
}

(* Execution order within one instant.  [Local] occurrences (timers,
   tickers, timeouts, engine deadlines — everything this timeline
   scheduled for itself) keep their per-timeline sequence numbers.
   Message deliveries are ranked by the sender-stamped identity of the
   message instead: the stamp is computable on whichever timeline the
   sender runs, so a parallel run that partitions hosts across domains
   merges cross-partition deliveries into {e exactly} the order the
   single-timeline run produces.  At equal time, local occurrences run
   before deliveries (constructor order). *)
module Rank = struct
  type t =
    | Local of int
    | Msg of { origin : string; n : int; dup : int }

  let compare a b =
    match (a, b) with
    | Local x, Local y -> Int.compare x y
    | Local _, Msg _ -> -1
    | Msg _, Local _ -> 1
    | Msg a, Msg b -> (
        match String.compare a.origin b.origin with
        | 0 -> ( match Int.compare a.n b.n with 0 -> Int.compare a.dup b.dup | c -> c)
        | c -> c)
end

module Key = struct
  type t = Clock.time * Rank.t

  let compare (ta, ra) (tb, rb) =
    match Int.compare ta tb with 0 -> Rank.compare ra rb | c -> c
end

module Q = Map.Make (Key)

type entry = {
  holds : bool;
  run : Clock.time -> unit;
}

type t = {
  mutable now : Clock.time;
  mutable queue : entry Q.t;
  mutable seq : int;
  mutable holding : int;
  m : Obs.Metrics.t;
  c_scheduled : Obs.Metrics.Counter.t;
  c_executed : Obs.Metrics.Counter.t;
  g_max_queue : Obs.Metrics.Gauge.t;
}

let create ?(origin = Clock.origin) () =
  let m = Obs.Metrics.create () in
  let t =
    {
      now = origin;
      queue = Q.empty;
      seq = 0;
      holding = 0;
      m;
      c_scheduled = Obs.Metrics.counter m "sched.scheduled";
      c_executed = Obs.Metrics.counter m "sched.executed";
      g_max_queue = Obs.Metrics.gauge m "sched.max_queue";
    }
  in
  Obs.Metrics.gauge_fn m "sched.queue_length" (fun () -> float_of_int (Q.cardinal t.queue));
  Obs.Metrics.gauge_fn m "sched.holding" (fun () -> float_of_int t.holding);
  Obs.Metrics.gauge_fn m "sched.now" (fun () -> float_of_int t.now);
  t

let now t = t.now
let metrics t = t.m

let enqueue_key t ~holds key run =
  t.queue <- Q.add key { holds; run } t.queue;
  if holds then t.holding <- t.holding + 1;
  Obs.Metrics.Gauge.set_max t.g_max_queue (float_of_int (Q.cardinal t.queue));
  key

let enqueue t ~holds time run =
  let time = max time t.now in
  t.seq <- t.seq + 1;
  enqueue_key t ~holds (time, Rank.Local t.seq) run

let at t ?(holds = true) time f =
  Obs.Metrics.Counter.incr t.c_scheduled;
  ignore (enqueue t ~holds time f)

let at_msg t ?(holds = true) ~origin ~n ~dup time f =
  Obs.Metrics.Counter.incr t.c_scheduled;
  let time = max time t.now in
  (* the (origin, n, dup) stamp is unique for network traffic; raw
     harness messages that collide (same origin, reused counter) step
     the dup lane rather than silently replacing the earlier entry *)
  let rec free dup =
    let key = (time, Rank.Msg { origin; n; dup }) in
    if Q.mem key t.queue then free (dup + 1) else key
  in
  ignore (enqueue_key t ~holds (free dup) f)

let cancellable t ?(holds = true) time f =
  Obs.Metrics.Counter.incr t.c_scheduled;
  let key = enqueue t ~holds time f in
  fun () ->
    match Q.find_opt key t.queue with
    | None -> () (* already executed (or already cancelled) *)
    | Some e ->
        t.queue <- Q.remove key t.queue;
        if e.holds then t.holding <- t.holding - 1

let after t ?holds span f = at t ?holds (Clock.add t.now span) f

let every t ?phase ~period f =
  let period = max 1 period in
  let rec tick time =
    f time;
    ignore (enqueue t ~holds:false (Clock.add time period) tick)
  in
  ignore (enqueue t ~holds:false (Clock.add t.now (Option.value ~default:period phase)) tick)

let next_due t = Option.map (fun ((time, _), _) -> time) (Q.min_binding_opt t.queue)

let next_holding t =
  (* holding occurrences are rare enough that a scan is fine; the queue
     is ordered, so the first holding binding is the earliest *)
  Q.fold
    (fun (time, _) e acc ->
      match acc with Some _ -> acc | None -> if e.holds then Some time else None)
    t.queue None

let pending t = t.holding
let queue_length t = Q.cardinal t.queue

let exec t key e =
  t.queue <- Q.remove key t.queue;
  if e.holds then t.holding <- t.holding - 1;
  let time = fst key in
  if time > t.now then t.now <- time;
  Obs.Metrics.Counter.incr t.c_executed;
  e.run t.now

let run_until t until =
  let rec loop () =
    match Q.min_binding_opt t.queue with
    | Some (((time, _) as key), e) when time <= until ->
        exec t key e;
        loop ()
    | _ -> ()
  in
  loop ();
  if until > t.now then t.now <- until

let step t =
  match Q.min_binding_opt t.queue with
  | None -> false
  | Some (key, e) ->
      exec t key e;
      true

let stats t =
  {
    scheduled = Obs.Metrics.Counter.value t.c_scheduled;
    executed = Obs.Metrics.Counter.value t.c_executed;
    max_queue = int_of_float (Obs.Metrics.Gauge.value t.g_max_queue);
  }
