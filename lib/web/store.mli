(** A node's persistent data: named XML documents and RDF graphs.

    This is the "normal, persistent, modifiable" side of Thesis 4 —
    written text, as opposed to the spoken words of events.  Updates go
    through {!apply} (the primitive actions of Thesis 8) and produce
    update notifications the hosting node can turn into local events
    (the basis for deriving ECA rules from production rules, Thesis 1).

    {b Identity (Thesis 10).}  Document elements carry surrogate ids
    (assigned on load and on insertion).  A [U_replace] transfers the
    replaced element's surrogate id to the replacement root — the object
    keeps its identity while its value changes.  Watches come in the two
    modes the paper contrasts:
    - a {e surrogate} watch follows an element by oid and survives value
      changes ([`Changed] reports with the item still tracked);
    - an {e extensional} watch knows its item only by value; after the
      value changes the item cannot be found any more ([`Lost]). *)

open Xchange_data
open Xchange_query
open Xchange_rules
open Xchange_obs

type t

type notification = { doc : string; summary : Term.t }
(** What changed, as a data term [update\[...\]] suitable for a local
    event payload. *)

val create : ?cache_capacity:int -> unit -> t
(** [cache_capacity] bounds the memoized-query LRU (default 512
    entries); pass [1] to effectively disable cross-query reuse. *)

(** {1 Documents} *)

val add_doc : t -> string -> Term.t -> unit
(** Loads a document under a path name (surrogate ids are assigned). *)

val doc : t -> string -> Term.t option
val doc_names : t -> string list
val remove_doc : t -> string -> bool

(** {1 RDF graphs} *)

val add_rdf : t -> string -> Rdf.graph -> unit
val rdf : t -> string -> Rdf.graph option
val rdf_names : t -> string list

(** {1 Updates} *)

val apply : t -> Action.update -> (int * notification list, string) result
(** Applies a primitive update; the count is the number of affected
    nodes/triples, with one notification per touched document. *)

val apply_txn : t -> Action.update list -> (int * notification list, string) result
(** All-or-nothing multi-update (the store face of Thesis 10's
    transactional updates): applies the mutations in order; reads
    between them see the earlier writes (optimistic execution); the
    first failure rolls the whole store back to its pre-transaction
    state and reports which update failed.  Observers see the
    individual [Ch_update]s only after the batch commits, or a single
    [Ch_restore] on abort.  [apply_txn t []] is a no-op [Ok (0, [])]. *)

val replace_at : t -> doc:string -> Path.t -> Term.t -> (unit, string) result
(** Positional single-node replace (used by hosts that edit documents
    directly, e.g. the polling producer of E3 and the identity
    experiment E10).  Like [U_replace], the replacement inherits the
    replaced element's surrogate id. *)

(** {1 Change observation and dynamic answerers}

    Hooks for components that maintain a derived view of a document —
    e.g. {!Pubsub}'s subscription index, which mirrors the
    [/subscribers] register incrementally instead of re-querying it per
    publish. *)

type change =
  | Ch_update of Action.update
      (** a successful {!apply} that affected at least one node; the
          update value is the one applied (selectors and content as
          instantiated by the rule engine) *)
  | Ch_doc of string  (** {!add_doc} / {!remove_doc} / {!replace_at} of this document *)
  | Ch_restore  (** {!rollback}: every document may have changed *)

val on_change : t -> (change -> unit) -> unit
(** Register an observer, called synchronously after each mutation.
    Observers cannot veto; exceptions propagate to the mutator. *)

val set_dynamic : t -> string -> (seed:Subst.t -> Qterm.t -> Subst.set option) -> unit
(** Install a per-document answerer consulted by {!query} {e before}
    the index/LRU path.  Returning [Some answers] serves the query from
    the derived structure (counted in [store.dynamic_answers]);
    returning [None] falls back to the document.  The contract is
    answer-equivalence: a [Some] result must be exactly what the
    fallback would compute. *)

val clear_dynamic : t -> string -> unit

val env : t -> Condition.env
(** Query environment over this store only ([Local]/[Remote] resolve by
    path against this store; views resolve to nothing — the engine layers
    views on top).  [In] conditions are answered through {!query} — i.e.
    index-pruned and memoized. *)

(** {1 Hot-path indexing and memoization}

    The store owns one {!Term_index} per document, built lazily on the
    first query and dropped on every mutation of that document
    ({!apply}, {!replace_at}, {!add_doc}, {!remove_doc}, {!rollback}).
    Query answers are memoized in an LRU keyed by
    [(document digest, query, seed fingerprint)] — repeated conditions
    and polls over an unchanged document are O(1); entries of stale
    document versions age out by eviction since their digest key can
    never be looked up again. *)

val query : t -> doc:string -> ?seed:Subst.t -> Qterm.t -> Subst.set
(** All matches of the query anywhere in the named document, exactly as
    [Simulate.matches_anywhere ~seed q] on {!doc} — but candidate-pruned
    through the document's term index and memoized.  [] when the
    document does not exist. *)

val index : t -> string -> Term_index.t option
(** The (lazily built) index of the document's current version; [None]
    if the document does not exist. *)

type stats = {
  query_cache_hits : int;
  query_cache_misses : int;
  query_cache_evictions : int;
  query_cache_entries : int;
  index_builds : int;
  index_invalidations : int;
  live_indexes : int;
  indexed_selects : int;
      (** update-selector evaluations that pruned through a live index *)
}

val stats : t -> stats
(** Counters since [create] (observability for E-experiments).  A
    snapshot built from the store's {!Obs.Metrics} registry cells and
    the LRU's own counters at call time. *)

val metrics : t -> Obs.Metrics.t
(** The store's registry: [store.index_builds],
    [store.index_invalidations], [store.indexed_selects], plus pull
    cells sampling the query LRU ([store.query_cache_*]) and
    [store.live_indexes]. *)

(** {1 Snapshots} — the persistent side of a node, as one data term
    (documents and RDF graphs; watches are runtime state and are not
    included).  Used by the CLI to save/restore stores across runs. *)

type backup

val backup : t -> backup
val rollback : t -> backup -> unit
(** In-place restoration of documents and graphs (watches keep their
    registrations).  Basis of transactional compound actions. *)

val snapshot : t -> Term.t
val restore : Term.t -> (t, string) result
(** [restore (snapshot s)] has the same documents and graphs as [s]
    (fresh surrogate ids). *)

val load_snapshot : t -> Term.t -> (unit, string) result
(** In-place {!restore} into an existing store (crash recovery: the
    node record and every reference to its store survive, only the
    contents are replaced).  The snapshot is validated before anything
    is wiped — on [Error] the store is untouched.  Observers see one
    [Ch_restore]; watches keep their registrations (surrogate watches
    will report [`Lost]: recovered elements carry fresh surrogate ids —
    identity does not survive a crash, which is exactly what the two
    watch modes of Thesis 10 distinguish). *)

(** {1 Watches — Thesis 10} *)

type watch_id

val watch_surrogate : t -> doc:string -> Path.t -> (watch_id, string) result
(** Track the element at the path by its surrogate id. *)

val watch_extensional : t -> doc:string -> Term.t -> (watch_id, string) result
(** Track an item by its current value (must occur in the document). *)

type watch_status =
  [ `Unchanged
  | `Changed of Term.t  (** new value; tracking continues *)
  | `Lost  (** the item can no longer be identified *)
  ]

val poll_watch : t -> watch_id -> watch_status
(** Check a watch against the current document state.  A surrogate
    watch reports [`Changed] (and keeps tracking) when the element's
    value changed, [`Lost] only if the element was deleted.  An
    extensional watch reports [`Lost] as soon as its remembered value no
    longer occurs. *)

val watch_count : t -> int
