(** Periodic polling — the communication paradigm Thesis 3 argues
    against.

    A poller GETs a remote resource every [period] ms, diffs the
    response against the previous snapshot, and synthesises a local
    event (label [changed_label]) when the resource changed.  Compared
    with push (the producer's rule raising an event on update), polling
    "causes more network traffic, increases reaction time, and requires
    more local resources" — E3 measures all three. *)

open Xchange_event

val changed_label : string
(** ["poll:changed"] — label of the synthesised change events. *)

type stats
(** Live handle on the poller's cells in the network's metrics registry
    ([poll.polls], [poll.changes_seen], [poll.last_change_at], labelled
    [poller]/[target]).  Read through the accessors below at any time —
    including after further simulation. *)

val polls : stats -> int
(** Ticker firings (each starts one fetch round-trip). *)

val changes_seen : stats -> int
(** Responses that differed from the previous snapshot. *)

val last_change_detected_at : stats -> Clock.time
(** Clock value when the poller last saw a change ([Clock.origin] if
    never). *)

val attach :
  Network.t ->
  poller:string ->
  target:string ->
  period:Clock.span ->
  stats
(** [attach net ~poller ~target ~period] makes node [poller] poll the
    resource [target] (a [host/path] URI).  Change events are delivered
    to the poller's own engine with the polled document as payload,
    wrapped as [changed\[<doc>\]]. *)
