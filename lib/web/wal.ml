open Xchange_data
open Xchange_event
open Xchange_query
open Xchange_rules
open Xchange_obs

type tail_entry = T_event of Event.t | T_advance of Clock.time

type snapshot = {
  s_at : Clock.time;
  s_store : Term.t;
  s_event_n : int;
  s_msg_n : int;
  s_req_n : int;
  s_firings : int;
  s_seen : int list;
  s_seen_updates : (string * int) list;
  s_logs : string list;
  s_errors : (string * string) list;
  s_tail : tail_entry list;
}

type record =
  | Event of Event.t
  | Remote_update of { from : string; msg_id : int; at : Clock.time; update : Action.update }
  | Advance of Clock.time
  | Update of Action.update
  | Firing of { rule : string; at : Clock.time }
  | Snapshot of snapshot

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, reflected, table-driven)                         *)

let crc_table =
  let t = Array.make 256 0l in
  for n = 0 to 255 do
    let c = ref (Int32.of_int n) in
    for _ = 0 to 7 do
      c :=
        if Int32.logand !c 1l <> 0l then
          Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
        else Int32.shift_right_logical !c 1
    done;
    t.(n) <- !c
  done;
  t

let crc32 s =
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xffl) in
      c := Int32.logxor crc_table.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ------------------------------------------------------------------ *)
(* Binary codec.  Fixed-width little-endian scalars, u32 length
   prefixes for strings and lists — the simplest format that a torn or
   bit-flipped tail cannot make ambiguous once the frame checksum has
   vouched for the payload. *)

let w_u8 b n = Buffer.add_uint8 b (n land 0xff)
let w_u32 b n = Buffer.add_int32_le b (Int32.of_int n)
let w_i64 b n = Buffer.add_int64_le b (Int64.of_int n)
let w_f64 b f = Buffer.add_int64_le b (Int64.bits_of_float f)

let w_str b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_bool b v = w_u8 b (if v then 1 else 0)

let w_opt w b = function
  | None -> w_u8 b 0
  | Some v ->
      w_u8 b 1;
      w b v

let w_list w b xs =
  w_u32 b (List.length xs);
  List.iter (w b) xs

exception Decode of string

type cursor = { s : string; mutable pos : int }

let need c n = if c.pos + n > String.length c.s then raise (Decode "payload ends early")

let r_u8 c =
  need c 1;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r_u32 c =
  need c 4;
  let v = String.get_int32_le c.s c.pos in
  c.pos <- c.pos + 4;
  Int32.to_int v land 0xffffffff

let r_i64 c =
  need c 8;
  let v = String.get_int64_le c.s c.pos in
  c.pos <- c.pos + 8;
  Int64.to_int v

let r_f64 c =
  need c 8;
  let v = String.get_int64_le c.s c.pos in
  c.pos <- c.pos + 8;
  Int64.float_of_bits v

let r_str c =
  let n = r_u32 c in
  need c n;
  let v = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  v

let r_bool c = match r_u8 c with 0 -> false | 1 -> true | n -> raise (Decode (Fmt.str "bad bool %d" n))

let r_opt r c = match r_u8 c with 0 -> None | 1 -> Some (r c) | n -> raise (Decode (Fmt.str "bad option tag %d" n))

let r_list r c =
  let n = r_u32 c in
  if n > String.length c.s then raise (Decode "list length exceeds payload");
  List.init n (fun _ -> r c)

let bad what tag = raise (Decode (Fmt.str "bad %s tag %d" what tag))

(* data terms — surrogate ids are identity, not value, and are
   reassigned by the store on load, so the codec drops them *)
let rec w_term b = function
  | Term.Elem e ->
      w_u8 b 0;
      w_str b e.Term.label;
      w_u8 b (match e.Term.ord with Term.Ordered -> 0 | Term.Unordered -> 1);
      w_list
        (fun b (k, v) ->
          w_str b k;
          w_str b v)
        b e.Term.attrs;
      w_list w_term b e.Term.children
  | Term.Text s ->
      w_u8 b 1;
      w_str b s
  | Term.Num f ->
      w_u8 b 2;
      w_f64 b f
  | Term.Bool v ->
      w_u8 b 3;
      w_bool b v

let rec r_term c =
  match r_u8 c with
  | 0 ->
      let label = r_str c in
      let ord = match r_u8 c with 0 -> Term.Ordered | 1 -> Term.Unordered | n -> bad "ordering" n in
      let attrs =
        r_list
          (fun c ->
            let k = r_str c in
            let v = r_str c in
            (k, v))
          c
      in
      let children = r_list r_term c in
      Term.elem ~ord ~attrs label children
  | 1 -> Term.Text (r_str c)
  | 2 -> Term.Num (r_f64 c)
  | 3 -> Term.Bool (r_bool c)
  | n -> bad "term" n

let w_selector b (sel : Path.selector) =
  w_list
    (fun b (axis, step) ->
      w_u8 b (match axis with Path.Child -> 0 | Path.Descendant -> 1);
      match step with
      | Path.Any -> w_u8 b 0
      | Path.Tag s ->
          w_u8 b 1;
          w_str b s)
    b sel

let r_selector c : Path.selector =
  r_list
    (fun c ->
      let axis = match r_u8 c with 0 -> Path.Child | 1 -> Path.Descendant | n -> bad "axis" n in
      let step =
        match r_u8 c with 0 -> Path.Any | 1 -> Path.Tag (r_str c) | n -> bad "step" n
      in
      (axis, step))
    c

let w_label_pat b = function
  | Qterm.L s ->
      w_u8 b 0;
      w_str b s
  | Qterm.L_var v ->
      w_u8 b 1;
      w_str b v
  | Qterm.L_any -> w_u8 b 2

let r_label_pat c =
  match r_u8 c with
  | 0 -> Qterm.L (r_str c)
  | 1 -> Qterm.L_var (r_str c)
  | 2 -> Qterm.L_any
  | n -> bad "label pattern" n

let w_leaf_pat b = function
  | Qterm.Leaf_any -> w_u8 b 0
  | Qterm.Text_is s ->
      w_u8 b 1;
      w_str b s
  | Qterm.Num_is f ->
      w_u8 b 2;
      w_f64 b f
  | Qterm.Bool_is v ->
      w_u8 b 3;
      w_bool b v
  | Qterm.Regex re ->
      w_u8 b 4;
      w_str b re

let r_leaf_pat c =
  match r_u8 c with
  | 0 -> Qterm.Leaf_any
  | 1 -> Qterm.Text_is (r_str c)
  | 2 -> Qterm.Num_is (r_f64 c)
  | 3 -> Qterm.Bool_is (r_bool c)
  | 4 -> Qterm.Regex (r_str c)
  | n -> bad "leaf pattern" n

let w_attr_pat b = function
  | Qterm.A_is s ->
      w_u8 b 0;
      w_str b s
  | Qterm.A_var v ->
      w_u8 b 1;
      w_str b v
  | Qterm.A_any -> w_u8 b 2

let r_attr_pat c =
  match r_u8 c with
  | 0 -> Qterm.A_is (r_str c)
  | 1 -> Qterm.A_var (r_str c)
  | 2 -> Qterm.A_any
  | n -> bad "attr pattern" n

let rec w_qterm b = function
  | Qterm.Var v ->
      w_u8 b 0;
      w_str b v
  | Qterm.As (v, q) ->
      w_u8 b 1;
      w_str b v;
      w_qterm b q
  | Qterm.Leaf l ->
      w_u8 b 2;
      w_leaf_pat b l
  | Qterm.El e ->
      w_u8 b 3;
      w_label_pat b e.Qterm.label;
      w_list
        (fun b (k, p) ->
          w_str b k;
          w_attr_pat b p)
        b e.Qterm.attrs;
      w_u8 b (match e.Qterm.ord with Term.Ordered -> 0 | Term.Unordered -> 1);
      w_u8 b (match e.Qterm.spec with Qterm.Total -> 0 | Qterm.Partial -> 1);
      w_list w_child b e.Qterm.children
  | Qterm.Desc q ->
      w_u8 b 4;
      w_qterm b q

and w_child b = function
  | Qterm.Pos q ->
      w_u8 b 0;
      w_qterm b q
  | Qterm.Without q ->
      w_u8 b 1;
      w_qterm b q
  | Qterm.Opt q ->
      w_u8 b 2;
      w_qterm b q

let rec r_qterm c =
  match r_u8 c with
  | 0 -> Qterm.Var (r_str c)
  | 1 ->
      let v = r_str c in
      Qterm.As (v, r_qterm c)
  | 2 -> Qterm.Leaf (r_leaf_pat c)
  | 3 ->
      let label = r_label_pat c in
      let attrs =
        r_list
          (fun c ->
            let k = r_str c in
            let p = r_attr_pat c in
            (k, p))
          c
      in
      let ord = match r_u8 c with 0 -> Term.Ordered | 1 -> Term.Unordered | n -> bad "ordering" n in
      let spec = match r_u8 c with 0 -> Qterm.Total | 1 -> Qterm.Partial | n -> bad "spec" n in
      let children = r_list r_child c in
      Qterm.El { Qterm.label; attrs; ord; spec; children }
  | 4 -> Qterm.Desc (r_qterm c)
  | n -> bad "query term" n

and r_child c =
  match r_u8 c with
  | 0 -> Qterm.Pos (r_qterm c)
  | 1 -> Qterm.Without (r_qterm c)
  | 2 -> Qterm.Opt (r_qterm c)
  | n -> bad "child pattern" n

let w_rdf_node b = function
  | Rdf.Iri s ->
      w_u8 b 0;
      w_str b s
  | Rdf.Blank s ->
      w_u8 b 1;
      w_str b s
  | Rdf.Lit s ->
      w_u8 b 2;
      w_str b s
  | Rdf.Lit_num f ->
      w_u8 b 3;
      w_f64 b f

let r_rdf_node c =
  match r_u8 c with
  | 0 -> Rdf.Iri (r_str c)
  | 1 -> Rdf.Blank (r_str c)
  | 2 -> Rdf.Lit (r_str c)
  | 3 -> Rdf.Lit_num (r_f64 c)
  | n -> bad "rdf node" n

let w_triple b { Rdf.s; p; o } =
  w_rdf_node b s;
  w_str b p;
  w_rdf_node b o

let r_triple c =
  let s = r_rdf_node c in
  let p = r_str c in
  let o = r_rdf_node c in
  { Rdf.s; p; o }

let w_update b = function
  | Action.U_insert { doc; selector; at; content } ->
      w_u8 b 0;
      w_str b doc;
      w_selector b selector;
      w_opt (fun b n -> w_i64 b n) b at;
      w_term b content
  | Action.U_delete { doc; selector; pattern } ->
      w_u8 b 1;
      w_str b doc;
      w_selector b selector;
      w_opt w_qterm b pattern
  | Action.U_replace { doc; selector; content } ->
      w_u8 b 2;
      w_str b doc;
      w_selector b selector;
      w_term b content
  | Action.U_create_doc { doc; content } ->
      w_u8 b 3;
      w_str b doc;
      w_term b content
  | Action.U_delete_doc { doc } ->
      w_u8 b 4;
      w_str b doc
  | Action.U_rdf_assert { doc; triple } ->
      w_u8 b 5;
      w_str b doc;
      w_triple b triple
  | Action.U_rdf_retract { doc; triple } ->
      w_u8 b 6;
      w_str b doc;
      w_triple b triple

let r_update c =
  match r_u8 c with
  | 0 ->
      let doc = r_str c in
      let selector = r_selector c in
      let at = r_opt r_i64 c in
      let content = r_term c in
      Action.U_insert { doc; selector; at; content }
  | 1 ->
      let doc = r_str c in
      let selector = r_selector c in
      let pattern = r_opt r_qterm c in
      Action.U_delete { doc; selector; pattern }
  | 2 ->
      let doc = r_str c in
      let selector = r_selector c in
      let content = r_term c in
      Action.U_replace { doc; selector; content }
  | 3 ->
      let doc = r_str c in
      let content = r_term c in
      Action.U_create_doc { doc; content }
  | 4 -> Action.U_delete_doc { doc = r_str c }
  | 5 ->
      let doc = r_str c in
      let triple = r_triple c in
      Action.U_rdf_assert { doc; triple }
  | 6 ->
      let doc = r_str c in
      let triple = r_triple c in
      Action.U_rdf_retract { doc; triple }
  | n -> bad "update" n

let w_event b (e : Event.t) =
  w_i64 b e.Event.id;
  w_str b e.Event.label;
  w_str b e.Event.sender;
  w_str b e.Event.recipient;
  w_i64 b e.Event.occurred_at;
  w_i64 b e.Event.received_at;
  w_opt w_i64 b e.Event.expires_at;
  w_term b e.Event.payload

let r_event c =
  let id = r_i64 c in
  let label = r_str c in
  let sender = r_str c in
  let recipient = r_str c in
  let occurred_at = r_i64 c in
  let received_at = r_i64 c in
  let expires_at = r_opt r_i64 c in
  let payload = r_term c in
  let ttl = Option.map (fun e -> e - occurred_at) expires_at in
  Event.make ~id ~sender ~recipient ~received_at ?ttl ~occurred_at ~label payload

let w_tail_entry b = function
  | T_event e ->
      w_u8 b 0;
      w_event b e
  | T_advance tm ->
      w_u8 b 1;
      w_i64 b tm

let r_tail_entry c =
  match r_u8 c with
  | 0 -> T_event (r_event c)
  | 1 -> T_advance (r_i64 c)
  | n -> bad "tail entry" n

let w_record b = function
  | Event e ->
      w_u8 b 1;
      w_event b e
  | Remote_update { from; msg_id; at; update } ->
      w_u8 b 2;
      w_str b from;
      w_i64 b msg_id;
      w_i64 b at;
      w_update b update
  | Advance tm ->
      w_u8 b 3;
      w_i64 b tm
  | Update u ->
      w_u8 b 4;
      w_update b u
  | Firing { rule; at } ->
      w_u8 b 5;
      w_str b rule;
      w_i64 b at
  | Snapshot s ->
      w_u8 b 6;
      w_i64 b s.s_at;
      w_term b s.s_store;
      w_i64 b s.s_event_n;
      w_i64 b s.s_msg_n;
      w_i64 b s.s_req_n;
      w_i64 b s.s_firings;
      w_list w_i64 b s.s_seen;
      w_list
        (fun b (h, n) ->
          w_str b h;
          w_i64 b n)
        b s.s_seen_updates;
      w_list w_str b s.s_logs;
      w_list
        (fun b (r, m) ->
          w_str b r;
          w_str b m)
        b s.s_errors;
      w_list w_tail_entry b s.s_tail

let r_record c =
  match r_u8 c with
  | 1 -> Event (r_event c)
  | 2 ->
      let from = r_str c in
      let msg_id = r_i64 c in
      let at = r_i64 c in
      let update = r_update c in
      Remote_update { from; msg_id; at; update }
  | 3 -> Advance (r_i64 c)
  | 4 -> Update (r_update c)
  | 5 ->
      let rule = r_str c in
      let at = r_i64 c in
      Firing { rule; at }
  | 6 ->
      let s_at = r_i64 c in
      let s_store = r_term c in
      let s_event_n = r_i64 c in
      let s_msg_n = r_i64 c in
      let s_req_n = r_i64 c in
      let s_firings = r_i64 c in
      let s_seen = r_list r_i64 c in
      let s_seen_updates =
        r_list
          (fun c ->
            let h = r_str c in
            let n = r_i64 c in
            (h, n))
          c
      in
      let s_logs = r_list r_str c in
      let s_errors =
        r_list
          (fun c ->
            let r = r_str c in
            let m = r_str c in
            (r, m))
          c
      in
      let s_tail = r_list r_tail_entry c in
      Snapshot
        {
          s_at;
          s_store;
          s_event_n;
          s_msg_n;
          s_req_n;
          s_firings;
          s_seen;
          s_seen_updates;
          s_logs;
          s_errors;
          s_tail;
        }
  | n -> bad "record" n

(* ------------------------------------------------------------------ *)
(* The device: an append-only buffer of [len u32][crc u32][payload]
   frames.  The checksum covers the payload only; the length field is
   validated against the remaining bytes, which is what distinguishes a
   torn write from a bit flip in the diagnostics. *)

type t = {
  buf : Buffer.t;
  scratch : Buffer.t;
  mutable n_appended : int;
  mutable n_since_snapshot : int;
  c_appends : Obs.Metrics.Counter.t;
  c_snapshots : Obs.Metrics.Counter.t;
  c_compactions : Obs.Metrics.Counter.t;
  c_rollbacks : Obs.Metrics.Counter.t;
  c_corrupt : Obs.Metrics.Counter.t;
  c_replayed : Obs.Metrics.Counter.t;
}

let frame_header_bytes = 8
let max_frame_bytes = 1 lsl 30

let create ?metrics () =
  let m = match metrics with Some m -> m | None -> Obs.Metrics.create () in
  let t =
    {
      buf = Buffer.create 4096;
      scratch = Buffer.create 512;
      n_appended = 0;
      n_since_snapshot = 0;
      c_appends = Obs.Metrics.counter m "wal.appends";
      c_snapshots = Obs.Metrics.counter m "wal.snapshots";
      c_compactions = Obs.Metrics.counter m "wal.compactions";
      c_rollbacks = Obs.Metrics.counter m "wal.rollback_truncations";
      c_corrupt = Obs.Metrics.counter m "wal.corrupt_stops";
      c_replayed = Obs.Metrics.counter m "wal.replayed_updates";
    }
  in
  Obs.Metrics.gauge_fn m "wal.bytes" (fun () -> float_of_int (Buffer.length t.buf));
  Obs.Metrics.gauge_fn m "wal.records" (fun () -> float_of_int t.n_appended);
  t

let size_bytes t = Buffer.length t.buf
let appended t = t.n_appended
let records_since_snapshot t = t.n_since_snapshot

let append_frame t payload =
  w_u32 t.buf (String.length payload);
  Buffer.add_int32_le t.buf (crc32 payload);
  Buffer.add_string t.buf payload

let append t r =
  Buffer.clear t.scratch;
  w_record t.scratch r;
  append_frame t (Buffer.contents t.scratch);
  t.n_appended <- t.n_appended + 1;
  Obs.Metrics.Counter.incr t.c_appends;
  match r with
  | Snapshot _ ->
      Obs.Metrics.Counter.incr t.c_snapshots;
      t.n_since_snapshot <- 0
  | Event _ | Remote_update _ | Advance _ | Update _ | Firing _ ->
      t.n_since_snapshot <- t.n_since_snapshot + 1

type mark = { m_bytes : int; m_records : int; m_since : int }

let mark t = { m_bytes = Buffer.length t.buf; m_records = t.n_appended; m_since = t.n_since_snapshot }

let truncate t m =
  if m.m_bytes < Buffer.length t.buf then begin
    Buffer.truncate t.buf m.m_bytes;
    t.n_appended <- m.m_records;
    t.n_since_snapshot <- m.m_since;
    Obs.Metrics.Counter.incr t.c_rollbacks
  end

type stop = Clean | Corrupt of string

let decode_all s =
  let total = String.length s in
  let rec go pos acc =
    if pos = total then (List.rev acc, Clean)
    else if pos + frame_header_bytes > total then
      (List.rev acc, Corrupt (Fmt.str "truncated tail: %d stray byte(s) after last record" (total - pos)))
    else
      let len = Int32.to_int (String.get_int32_le s pos) land 0xffffffff in
      let crc = String.get_int32_le s (pos + 4) in
      if len > max_frame_bytes then
        (List.rev acc, Corrupt (Fmt.str "implausible frame length %d (corrupt header)" len))
      else if pos + frame_header_bytes + len > total then
        ( List.rev acc,
          Corrupt
            (Fmt.str "torn write: frame claims %d byte(s), only %d remain" len
               (total - pos - frame_header_bytes)) )
      else
        let payload = String.sub s (pos + frame_header_bytes) len in
        if crc32 payload <> crc then
          (List.rev acc, Corrupt "checksum mismatch (bit flip or torn rewrite)")
        else
          match (try Ok (r_record { s = payload; pos = 0 }) with
                | Decode e -> Error e
                | Invalid_argument e -> Error e) with
          | Error e -> (List.rev acc, Corrupt (Fmt.str "undecodable record: %s" e))
          | Ok r -> go (pos + frame_header_bytes + len) (r :: acc)
  in
  go 0 []

let records t =
  let rs, stop = decode_all (Buffer.contents t.buf) in
  (match stop with Clean -> () | Corrupt _ -> Obs.Metrics.Counter.incr t.c_corrupt);
  (rs, stop)

let contents t = Buffer.contents t.buf

let of_string s =
  let t = create () in
  Buffer.add_string t.buf s;
  let rs, _stop = decode_all s in
  t.n_appended <- List.length rs;
  let since =
    List.fold_left (fun n r -> match r with Snapshot _ -> 0 | _ -> n + 1) 0 rs
  in
  t.n_since_snapshot <- since;
  t

let to_file t path =
  let oc = open_out_bin path in
  Buffer.output_buffer oc t.buf;
  close_out oc

let of_file path =
  match
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Ok s
    with Sys_error e -> Error e
  with
  | Error e -> Error e
  | Ok s -> Ok (of_string s)

let drop_corrupt_tail t =
  match records t with
  | _, Clean -> ()
  | rs, Corrupt _ ->
      Buffer.clear t.buf;
      t.n_appended <- 0;
      t.n_since_snapshot <- 0;
      List.iter
        (fun r ->
          Buffer.clear t.scratch;
          w_record t.scratch r;
          append_frame t (Buffer.contents t.scratch);
          t.n_appended <- t.n_appended + 1;
          t.n_since_snapshot <-
            (match r with Snapshot _ -> 0 | _ -> t.n_since_snapshot + 1))
        rs

let compact t ~keep =
  match records t with
  | _, Corrupt _ -> () (* never rewrite a log we cannot fully read *)
  | rs, Clean ->
      (* index of the last snapshot, if any *)
      let last =
        List.fold_left
          (fun (i, last) r -> (i + 1, match r with Snapshot _ -> Some i | _ -> last))
          (0, None) rs
        |> snd
      in
      (match last with
      | None -> ()
      | Some cut ->
          let kept_before =
            List.filteri (fun i _ -> i < cut) rs |> List.filter keep
          in
          let tail = List.filteri (fun i _ -> i >= cut) rs in
          Buffer.clear t.buf;
          t.n_appended <- 0;
          t.n_since_snapshot <- 0;
          List.iter
            (fun r ->
              Buffer.clear t.scratch;
              w_record t.scratch r;
              append_frame t (Buffer.contents t.scratch);
              t.n_appended <- t.n_appended + 1;
              t.n_since_snapshot <-
                (match r with Snapshot _ -> 0 | _ -> t.n_since_snapshot + 1))
            (kept_before @ tail);
          Obs.Metrics.Counter.incr t.c_compactions)

let replay_store t store =
  let rs, _stop = records t in
  let rec go applied = function
    | [] -> Ok applied
    | Update u :: rest -> (
        match Store.apply store u with
        | Ok _ ->
            Obs.Metrics.Counter.incr t.c_replayed;
            go (applied + 1) rest
        | Error e -> Error (Fmt.str "replay stopped after %d update(s): %s" applied e))
    | (Event _ | Remote_update _ | Advance _ | Firing _ | Snapshot _) :: rest -> go applied rest
  in
  go 0 rs
