(** Messages exchanged between Web nodes.

    The SOAP-inspired shape of Section 2: an envelope (header with
    sending time and endpoints) around a body.  Three body kinds model
    the infrastructure the paper builds on: [Event] (push communication,
    Thesis 3), and [Get]/[Response] (the HTTP pull primitives used by
    remote queries and by the polling baseline). *)

open Xchange_data
open Xchange_event

type res_kind = Doc | Rdf
(** What a [Get] asks for: an XML document or an RDF graph (shipped on
    the wire as its term encoding, {!Xchange_data.Rdf.graph_to_term}). *)

type body =
  | Event of Event.t
  | Get of { req_id : int; path : string; kind : res_kind }
  | Response of { req_id : int; doc : Term.t option }
      (** for [kind = Rdf] requests, [doc] is the encoded graph *)
  | Update of Xchange_rules.Action.update
      (** a remote update request (HTTP PUT/POST flavour): the target
          path inside the update is already node-local *)

type t = {
  msg_id : int;
      (** Per-origin sequence number when allocated by a node
          ({!Xchange_web.Node.fresh_msg_id}); a process-global fallback
          counter for raw harness messages.  A message's identity is
          [(from_host, msg_id)] — deterministic under domain sharding
          because each host's send sequence is a pure function of its
          own execution history. *)
  from_host : string;
  to_host : string;
  sent_at : Clock.time;
  body : body;
}

val make :
  ?msg_id:int -> from_host:string -> to_host:string -> sent_at:Clock.time -> body -> t
(** [msg_id] defaults to the process-global fallback counter; network
    code passes the sending node's own sequence instead. *)

val size_bytes : t -> int
(** Size of the serialised envelope + payload (XML rendering), the unit
    of the traffic accounting in E3. *)

val to_term : t -> Term.t
(** The full envelope as a data term (what would go on the wire). *)

val pp : t Fmt.t

val fresh_req_id : unit -> int
val reset_ids : unit -> unit
