(** Runtime configuration shared by every layer.

    The only contents today are the {!Escape} hatches: environment
    variables that switch an accelerated code path back to its
    reference implementation.  They exist for differential testing and
    ablation benchmarks, never for production tuning — every pair of
    paths is property-tested equivalent, so disabling one must never
    change observable behaviour, only cost. *)

module Escape : sig
  (** One environment variable per escape hatch, each read {e once} at
      program start (engines capture the decision at build time; a
      mid-run [putenv] has no effect, which keeps compiled state
      consistent).  The value ["1"] (or any non-empty string other
      than ["0"]) disables the accelerated path.

      The full table lives in HACKING.md ("Escape hatches"); adding a
      hatch means adding it {b here} and in that table, nowhere else. *)

  val no_plan : bool
  (** [XCHANGE_NO_PLAN=1]: route {!Xchange_query.Simulate} entry points
      through the backtracking interpreter instead of compiled
      {!Xchange_query.Plan} closures. *)

  val no_subindex : bool
  (** [XCHANGE_NO_SUBINDEX=1]: replace {!Xchange_query.Sub_index}
      discrimination (publish dispatch, engine rule-atom candidate
      selection) with the linear scan over all registrations. *)

  val no_share : bool
  (** [XCHANGE_NO_SHARE=1]: give every rule its own atomic event
      matchers instead of deduplicating them through the shared alpha
      network ({!Xchange_rules.Alpha}). *)

  val disabled : string -> bool
  (** [disabled var] reads [var] from the environment {e now} with the
      hatch convention above (unset/[""]/["0"] = off).  For hatches the
      three cached flags don't cover; prefer the flags. *)

  val all : unit -> (string * bool * string) list
  (** [(variable, currently set, one-line description)] for every known
      hatch — lets harnesses report which reference paths a run used. *)
end
