(** Runtime configuration shared by every layer.

    The only contents today are the {!Escape} hatches: environment
    variables that switch an accelerated code path back to its
    reference implementation.  They exist for differential testing and
    ablation benchmarks, never for production tuning — every pair of
    paths is property-tested equivalent, so disabling one must never
    change observable behaviour, only cost. *)

module Escape : sig
  (** One environment variable per escape hatch, each read {e once} at
      program start (engines capture the decision at build time; a
      mid-run [putenv] has no effect, which keeps compiled state
      consistent).  The value ["1"] (or any non-empty string other
      than ["0"]) disables the accelerated path.

      The full table lives in HACKING.md ("Escape hatches"); adding a
      hatch means adding it {b here} and in that table, nowhere else. *)

  val no_plan : bool
  (** [XCHANGE_NO_PLAN=1]: route {!Xchange_query.Simulate} entry points
      through the backtracking interpreter instead of compiled
      {!Xchange_query.Plan} closures. *)

  val no_subindex : bool
  (** [XCHANGE_NO_SUBINDEX=1]: replace {!Xchange_query.Sub_index}
      discrimination (publish dispatch, engine rule-atom candidate
      selection) with the linear scan over all registrations. *)

  val no_share : bool
  (** [XCHANGE_NO_SHARE=1]: give every rule its own atomic event
      matchers instead of deduplicating them through the shared alpha
      network ({!Xchange_rules.Alpha}). *)

  val no_par : bool
  (** [XCHANGE_NO_PAR=1]: force every {!Xchange_web.Network} onto the
      single sequential scheduler timeline regardless of [~domains] or
      [XCHANGE_DOMAINS] — the differential oracle for the sharded
      multicore scheduler. *)

  val no_wal : bool
  (** [XCHANGE_NO_WAL=1]: create every node without a write-ahead log.
      Non-crash behaviour is identical (the WAL is an output, never an
      input, of normal processing); a crashed node then recovers
      amnesic — empty store, fresh engine — instead of replaying.  The
      hatch exists so the whole suite can demonstrate that durability
      machinery never changes live semantics. *)

  val domains : int option
  (** [XCHANGE_DOMAINS=n]: default domain count for networks created
      without an explicit [~domains] (read once at program start;
      [None] when unset or unparseable).  Not a hatch — it picks the
      degree of sharding, while {!no_par} picks the oracle. *)

  val disabled : string -> bool
  (** [disabled var] reads [var] from the environment {e now} with the
      hatch convention above (unset/[""]/["0"] = off).  For hatches the
      three cached flags don't cover; prefer the flags. *)

  val all : unit -> (string * bool * string) list
  (** [(variable, currently set, one-line description)] for every known
      hatch — lets harnesses report which reference paths a run used. *)
end

(** Domain-local state with merge-on-snapshot.

    Each domain gets its own instance of a mutable structure (created
    by the callback on first touch); [fold]/[iter] visit every
    domain's instance for whole-process accounting.  Snapshots must be
    taken while worker domains are parked (the network driver only
    samples at barriers), so no locking is needed on the instances
    themselves — only the instance registry is mutex-guarded. *)
module Domain_local : sig
  type 'a t

  val create : (unit -> 'a) -> 'a t
  (** The creating domain's instance is materialised eagerly, so
      single-domain programs pay nothing and behave as before. *)

  val get : 'a t -> 'a
  (** This domain's instance (created on first call per domain). *)

  val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
  val iter : 'a t -> ('a -> unit) -> unit

  (** Per-domain counters merged on read: the hot-path increment is a
      plain [incr] on this domain's cell. *)
  module Counter : sig
    type nonrec t = int ref t

    val create : unit -> t
    val incr : t -> unit
    val add : t -> int -> unit
    val total : t -> int
    val reset : t -> unit
  end
end
