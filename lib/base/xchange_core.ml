module Escape = struct
  let disabled var =
    match Sys.getenv_opt var with None | Some "" | Some "0" -> false | Some _ -> true

  (* read once: engines capture these at build time, and a flag that
     flips mid-run would leave compiled state inconsistent with the
     dispatch decisions made from it *)
  let no_plan = disabled "XCHANGE_NO_PLAN"
  let no_subindex = disabled "XCHANGE_NO_SUBINDEX"
  let no_share = disabled "XCHANGE_NO_SHARE"
  let no_par = disabled "XCHANGE_NO_PAR"
  let no_wal = disabled "XCHANGE_NO_WAL"

  (* [XCHANGE_DOMAINS=n] is not a hatch but the same read-once
     discipline applies: a network sized mid-run would tear its
     host-to-partition map. *)
  let domains =
    match Sys.getenv_opt "XCHANGE_DOMAINS" with
    | None | Some "" -> None
    | Some s -> (
        match int_of_string_opt s with Some n when n >= 1 -> Some n | _ -> None)

  let all () =
    [
      ( "XCHANGE_NO_PLAN",
        no_plan,
        "interpret queries instead of running compiled plans (Simulate/Plan)" );
      ( "XCHANGE_NO_SUBINDEX",
        no_subindex,
        "linear-scan registrations instead of Sub_index discrimination" );
      ( "XCHANGE_NO_SHARE",
        no_share,
        "per-rule matchers and join state instead of the shared alpha/beta networks" );
      ( "XCHANGE_NO_PAR",
        no_par,
        "single-timeline sequential scheduler instead of sharded domains" );
      ( "XCHANGE_NO_WAL",
        no_wal,
        "volatile nodes (no write-ahead log, snapshots, or recovery)" );
    ]
end

(* Domain-local state with merge-on-snapshot.

   OCaml 5 domains must not share the process-global mutable caches and
   work counters the query/event layers grew while the engine was
   single-domain (plan LRU, regex LRU, prune counters, matcher-run
   counters).  [Domain_local] gives each domain its own instance,
   created on first touch, and keeps every instance on a registry so
   whole-process accounting ([fold]) still works: harnesses snapshot
   from the orchestrating domain while workers are parked at a barrier,
   which is the only time snapshots are taken. *)
module Domain_local = struct
  type 'a t = {
    key : 'a Domain.DLS.key;
    mu : Mutex.t;
    mutable instances : 'a list;
  }

  let create mk =
    (* recursive knot: the DLS initialiser registers the new instance *)
    let mu = Mutex.create () in
    let cell = ref None in
    let key =
      Domain.DLS.new_key (fun () ->
          let v = mk () in
          (match !cell with
          | Some t ->
              Mutex.lock t.mu;
              t.instances <- v :: t.instances;
              Mutex.unlock t.mu
          | None -> ());
          v)
    in
    let t = { key; mu; instances = [] } in
    cell := Some t;
    (* materialise the creating domain's instance eagerly so
       single-domain programs behave exactly as before *)
    ignore (Domain.DLS.get key);
    t

  let get t = Domain.DLS.get t.key

  let fold t ~init ~f =
    Mutex.lock t.mu;
    let r = List.fold_left f init t.instances in
    Mutex.unlock t.mu;
    r

  let iter t f = fold t ~init:() ~f:(fun () v -> f v)

  (* Domain-local counters: the common case.  [total] folds every
     domain's count; [reset] zeroes them all (harness-only, called
     while no worker domain is running). *)
  module Counter = struct
    type nonrec t = int ref t

    let create () : t = create (fun () -> ref 0)
    let incr (t : t) = incr (get t)
    let add (t : t) n = let r = get t in r := !r + n
    let total (t : t) = fold t ~init:0 ~f:(fun acc r -> acc + !r)
    let reset (t : t) = iter t (fun r -> r := 0)
  end
end
