module Escape = struct
  let disabled var =
    match Sys.getenv_opt var with None | Some "" | Some "0" -> false | Some _ -> true

  (* read once: engines capture these at build time, and a flag that
     flips mid-run would leave compiled state inconsistent with the
     dispatch decisions made from it *)
  let no_plan = disabled "XCHANGE_NO_PLAN"
  let no_subindex = disabled "XCHANGE_NO_SUBINDEX"
  let no_share = disabled "XCHANGE_NO_SHARE"

  let all () =
    [
      ( "XCHANGE_NO_PLAN",
        no_plan,
        "interpret queries instead of running compiled plans (Simulate/Plan)" );
      ( "XCHANGE_NO_SUBINDEX",
        no_subindex,
        "linear-scan registrations instead of Sub_index discrimination" );
      ( "XCHANGE_NO_SHARE",
        no_share,
        "per-rule atomic matchers instead of the shared alpha network" );
    ]
end
