(** Atomic events: volatile data (Thesis 4).

    An event is a message communicated between Web nodes: an envelope
    (id, label, sender, recipient, occurrence and reception times, an
    optional expiry) around a data-term payload.  Events are {e not}
    modifiable and {e not} persistent — "spoken words": the only mutable
    field in the whole system is the store, and making event data
    persistent requires an explicit action (Thesis 8's
    [Make_persistent]).

    Event ids are globally unique and deterministic; the deterministic
    simulator relies on them for tie-breaking temporal order of events
    carrying the same timestamp, and receivers deduplicate at-least-once
    deliveries by id.  Components that own an event stream (nodes,
    derivation engines, injection sources) allocate an {e origin lane}
    at creation time and stamp their events from a lane-local counter
    ({!fresh_origin} / {!scoped_id}) — a pure function of the
    component's own execution history, so ids come out identical
    whether the simulation runs on one timeline or sharded across
    OCaml domains.  The bare global counter remains as a fallback for
    harness code. *)

open Xchange_data

type t = private {
  id : int;
  label : string;  (** event type, conventionally the payload's root label *)
  payload : Term.t;
  sender : string;  (** URI of the originating node; "" when local/synthetic *)
  recipient : string;  (** URI of the target node; "" for broadcast/local *)
  occurred_at : Clock.time;
  received_at : Clock.time;  (** when the processing node saw it *)
  expires_at : Clock.time option;  (** volatility bound *)
}

val make :
  ?id:int ->
  ?sender:string ->
  ?recipient:string ->
  ?received_at:Clock.time ->
  ?ttl:Clock.span ->
  occurred_at:Clock.time ->
  label:string ->
  Term.t ->
  t
(** [received_at] defaults to [occurred_at]; [ttl] sets
    [expires_at = occurred_at + ttl].  [id] defaults to the global
    fallback counter; components owning an event stream pass
    {!scoped_id} ids instead. *)

val fresh_origin : unit -> int
(** Allocate an origin lane (>= 1).  Call from the orchestrating domain
    at component-creation time only — lane allocation order must be the
    same in sequential and sharded runs, and component creation happens
    in program order before any domain is spawned. *)

val scoped_id : origin:int -> n:int -> int
(** [scoped_id ~origin ~n] = the globally unique id of the [n]-th event
    of lane [origin].  Laned ids never collide with fallback ids. *)

val received : t -> Clock.time -> t
(** The same event as seen by a node at reception time. *)

val time : t -> Clock.time
(** The time at which the processing node reacts to the event:
    [received_at]. *)

val expired : t -> Clock.time -> bool

val to_term : t -> Term.t
(** Envelope + payload as a data term, so that rules can query event
    meta-data ("date when sent", SOAP header style). *)

val pp : t Fmt.t

val reset_ids : unit -> unit
(** Reset the global fallback id counter and the origin-lane allocator
    (test isolation only). *)
