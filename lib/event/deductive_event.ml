open Xchange_query

type rule = {
  name : string;
  derived_label : string;
  trigger : Event_query.t;
  payload : Construct.t;
}

type program = rule list

type compiled_rule = { spec : rule; engine : Incremental.t }

type t = {
  rules : compiled_rule list;  (* in stratum order *)
  fresh_id : (unit -> int) option;
      (* derived-event id allocator, typically the owning node's origin
         lane — deterministic under domain sharding.  [None] falls back
         to the global [Event] counter. *)
}

let rule ~name ~derives ~trigger ~payload = { name; derived_label = derives; trigger; payload }

let trigger_labels q =
  Event_query.atoms q
  |> List.map (fun (a : Event_query.atomic) -> Option.value ~default:"*" a.Event_query.label)
  |> List.sort_uniq String.compare

let dependencies program =
  List.map (fun r -> (r.derived_label, trigger_labels r.trigger)) program

(* Stratify: order rules so that each rule only depends on external
   labels or labels derived by earlier strata.  Fails on cycles. *)
let stratify program =
  let derived = List.sort_uniq String.compare (List.map (fun r -> r.derived_label) program) in
  let depends_on_derived r =
    let labels = trigger_labels r.trigger in
    if List.mem "*" labels then derived (* wildcard depends on everything *)
    else List.filter (fun l -> List.mem l derived) labels
  in
  let rec order placed_labels placed remaining =
    if remaining = [] then Ok (List.rev placed)
    else
      let ready, blocked =
        List.partition
          (fun r ->
            List.for_all (fun l -> List.mem l placed_labels) (depends_on_derived r))
          remaining
      in
      match ready with
      | [] ->
          Error
            (Fmt.str "recursive event derivation involving: %s"
               (String.concat ", " (List.map (fun r -> r.name) blocked)))
      | _ ->
          let new_labels =
            List.sort_uniq String.compare
              (placed_labels @ List.map (fun r -> r.derived_label) ready)
          in
          order new_labels (List.rev_append ready placed) blocked
  in
  (* a rule deriving a label its own trigger mentions is immediately
     recursive even if stratification by sets would pass *)
  let self_recursive =
    List.filter
      (fun r ->
        let labels = trigger_labels r.trigger in
        List.mem r.derived_label labels || List.mem "*" labels)
      program
  in
  match self_recursive with
  | r :: _ -> Error (Fmt.str "recursive event derivation: rule %s triggers on its own output" r.name)
  | [] -> order [] [] program

let compile ?horizon ?index ?share ?share_sub ?fresh_id program =
  match stratify program with
  | Error e -> Error e
  | Ok ordered ->
      let rec build acc = function
        | [] -> Ok { rules = List.rev acc; fresh_id }
        | r :: rest -> (
            match Incremental.create ?horizon ?index ?share ?share_sub r.trigger with
            | Error e -> Error (Fmt.str "rule %s: %s" r.name e)
            | Ok engine -> build ({ spec = r; engine } :: acc) rest)
      in
      build [] ordered

let derive ?fresh_id cr (detection : Instance.t) =
  match Construct.instantiate cr.spec.payload detection.Instance.subst [ detection.Instance.subst ] with
  | Error _ -> None
  | Ok payload ->
      let id = Option.map (fun f -> f ()) fresh_id in
      Some
        (Event.make ?id
           ~sender:("derived:" ^ cr.spec.name)
           ~occurred_at:detection.Instance.t_end ~label:cr.spec.derived_label payload)

(* Feed an input through all rule engines; derived events cascade to
   later strata (and only later ones — stratification guarantees no rule
   needs its own output). *)
let run t inject =
  let derived_acc = ref [] in
  let rec cascade rules pending_inputs =
    match rules with
    | [] -> ()
    | cr :: rest ->
        let detections =
          List.concat_map
            (fun input ->
              match input with
              | `Ev e -> Incremental.feed cr.engine e
              | `Now time -> Incremental.advance_to cr.engine time)
            pending_inputs
        in
        let new_events = List.filter_map (derive ?fresh_id:t.fresh_id cr) detections in
        derived_acc := !derived_acc @ new_events;
        cascade rest (pending_inputs @ List.map (fun e -> `Ev e) new_events)
  in
  cascade t.rules [ inject ];
  !derived_acc

let feed t e = run t (`Ev e)
let advance_to t time = run t (`Now time)

let join_stats t =
  Incremental.sum_join_stats (List.map (fun cr -> Incremental.join_stats cr.engine) t.rules)
