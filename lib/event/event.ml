open Xchange_data

type t = {
  id : int;
  label : string;
  payload : Term.t;
  sender : string;
  recipient : string;
  occurred_at : Clock.time;
  received_at : Clock.time;
  expires_at : Clock.time option;
}

let next_id = ref 0

(* Deterministic id lanes for sharded execution.  The global [next_id]
   fallback is fine on one timeline but races (and depends on global
   interleaving) once hosts run on separate domains, and event ids are
   observable: receivers deduplicate at-least-once deliveries by id and
   the alpha network memoises per id.  Components that own a stream of
   events (a node, a derivation engine, a network's injection source)
   allocate an origin lane at creation time — creation happens on the
   orchestrating domain in program order, so lanes are identical across
   sequential and sharded runs — and stamp events [lane * 2^40 + n]
   with their own local counter.  Lanes start at 1, so laned ids never
   collide with the small fallback ids. *)
let lane_shift = 40
let origin_counter = ref 0

let fresh_origin () =
  incr origin_counter;
  !origin_counter

let scoped_id ~origin ~n = (origin lsl lane_shift) lor (n land ((1 lsl lane_shift) - 1))

let make ?id ?(sender = "") ?(recipient = "") ?received_at ?ttl ~occurred_at ~label payload =
  let id =
    match id with
    | Some id -> id
    | None ->
        incr next_id;
        !next_id
  in
  {
    id;
    label;
    payload;
    sender;
    recipient;
    occurred_at;
    received_at = Option.value ~default:occurred_at received_at;
    expires_at = Option.map (Clock.add occurred_at) ttl;
  }

let received e at = { e with received_at = at }
let time e = e.received_at

let expired e now = match e.expires_at with Some t -> now > t | None -> false

let to_term e =
  Term.elem "event"
    ~attrs:[ ("id", string_of_int e.id) ]
    [
      Term.elem "header"
        [
          Term.elem "label" [ Term.text e.label ];
          Term.elem "sender" [ Term.text e.sender ];
          Term.elem "recipient" [ Term.text e.recipient ];
          Term.elem "occurred-at" [ Term.int e.occurred_at ];
        ];
      Term.elem "body" [ e.payload ];
    ]

let pp ppf e =
  Fmt.pf ppf "#%d %s@%a %a" e.id e.label Clock.pp_time e.occurred_at Term.pp e.payload

let reset_ids () =
  next_id := 0;
  origin_counter := 0
