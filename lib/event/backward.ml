open Xchange_query

let ( let* ) = Option.bind

(* Atomic payload matching goes through the compiled-plan path: the plan
   is fetched once per history sweep (one cache lookup), not once per
   event, and falls back to the interpreter under [XCHANGE_NO_PLAN]. *)
let atomic_matcher (a : Event_query.atomic) =
  let payload_matches =
    match Simulate.plan a.Event_query.pattern with
    | Some p -> Plan.matches p
    | None -> Simulate.matches a.Event_query.pattern
  in
  fun e ->
    let label_ok =
      match a.Event_query.label with Some l -> String.equal l e.Event.label | None -> true
    in
    let sender_ok =
      match a.Event_query.sender with Some s -> String.equal s e.Event.sender | None -> true
    in
    if not (label_ok && sender_ok) then []
    else
      payload_matches e.Event.payload
      |> List.map (fun subst -> Instance.atomic subst (Event.time e) e.Event.id)

(* Tuples drawn one instance per child, combined; [ordered] additionally
   requires strict temporal order between consecutive constituents. *)
let join_tuples ~ordered per_child =
  match per_child with
  | [] -> []
  | first :: rest ->
      let rec extend acc last = function
        | [] -> [ acc ]
        | instances :: rest' ->
            List.concat_map
              (fun i ->
                if ordered && not (Instance.strictly_before last i) then []
                else
                  match Instance.combine [ acc; i ] with
                  | Some c -> extend c i rest'
                  | None -> [])
              instances
      in
      List.concat_map (fun i -> extend i i rest) first

(* All size-n subsets of [instances] that combine jointly within [span]. *)
let times_subsets n span instances =
  let rec choose acc count pool =
    if count = 0 then [ acc ]
    else
      match pool with
      | [] -> []
      | i :: rest ->
          let with_i =
            match Instance.combine [ acc; i ] with
            | Some c when Instance.span c <= span -> choose c (count - 1) rest
            | Some _ | None -> []
          in
          with_i @ choose acc count rest
  in
  let rec pick_first = function
    | [] -> []
    | i :: rest -> choose i (n - 1) rest @ pick_first rest
  in
  if n = 0 then [] else pick_first instances

(* Arrival order used by accumulation operators. *)
let arrival_sort instances = List.sort Instance.compare instances

let group_key over_vars var subst =
  Subst.restrict (List.filter (fun v -> not (String.equal v var)) over_vars) subst

let numeric_of subst var =
  Option.bind (Subst.find var subst) Xchange_data.Term.as_num

(* guarded: an aggregate over zero values yields no binding, never a
   nan/infinity (mirrors Incremental.reduce) *)
let avg_opt = function
  | [] -> None
  | vals -> Some (List.fold_left ( +. ) 0. vals /. float_of_int (List.length vals))

let reduce op vals =
  match vals with
  | [] -> None
  | _ -> (
      match op with
      | Construct.Count -> Some (float_of_int (List.length vals))
      | Construct.Sum -> Some (List.fold_left ( +. ) 0. vals)
      | Construct.Avg -> avg_opt vals
      | Construct.Min -> Some (List.fold_left Float.min Float.infinity vals)
      | Construct.Max -> Some (List.fold_left Float.max Float.neg_infinity vals))

let window_slices window values =
  (* [values] oldest-first; yield (window values, index of last) *)
  let arr = Array.of_list values in
  let n = Array.length arr in
  let slices = ref [] in
  for last = window - 1 to n - 1 do
    slices := (Array.to_list (Array.sub arr (last - window + 1) window), last) :: !slices
  done;
  List.rev !slices

let rec eval q history ~now : Instance.t list =
  match q with
  | Event_query.Atomic a ->
      let m = atomic_matcher a in
      List.concat_map m (History.events history)
  | Event_query.And qs ->
      join_tuples ~ordered:false (List.map (fun q -> eval q history ~now) qs)
      |> Instance.dedup
  | Event_query.Or qs -> Instance.dedup (List.concat_map (fun q -> eval q history ~now) qs)
  | Event_query.Seq qs ->
      join_tuples ~ordered:true (List.map (fun q -> eval q history ~now) qs)
      |> Instance.dedup
  | Event_query.Within (q, span) ->
      List.filter (fun i -> Instance.span i <= span) (eval q history ~now)
  | Event_query.Absent (q1, q2, span) ->
      let starts = eval q1 history ~now in
      let blockers = eval q2 history ~now in
      List.filter_map
        (fun i1 ->
          let deadline = Clock.add i1.Instance.t_end span in
          if deadline > now then None
          else
            let blocked =
              List.exists
                (fun i2 ->
                  Instance.strictly_before i1 i2
                  && i2.Instance.t_start <= deadline
                  && Option.is_some (Subst.merge i1.Instance.subst i2.Instance.subst))
                blockers
            in
            if blocked then None
            else
              Some
                (Instance.timer i1.Instance.subst ~t_start:i1.Instance.t_start
                   ~t_end:deadline ~ids:i1.Instance.ids))
        starts
      |> Instance.dedup
  | Event_query.Times (n, q, span) ->
      times_subsets n span (arrival_sort (eval q history ~now)) |> Instance.dedup
  | Event_query.Agg spec -> eval_agg spec history ~now
  | Event_query.Rises spec -> eval_rises spec history ~now

and eval_agg (spec : Event_query.agg_spec) history ~now =
  let over_vars = Event_query.vars spec.Event_query.over in
  let instances = arrival_sort (eval spec.Event_query.over history ~now) in
  let groups : (Subst.t * Instance.t list) list =
    List.fold_left
      (fun groups i ->
        match numeric_of i.Instance.subst spec.Event_query.var with
        | None -> groups
        | Some _ ->
            let key = group_key over_vars spec.Event_query.var i.Instance.subst in
            let rec insert = function
              | [] -> [ (key, [ i ]) ]
              | (k, is) :: rest ->
                  if Subst.equal k key then (k, is @ [ i ]) :: rest else (k, is) :: insert rest
            in
            insert groups)
      [] instances
  in
  List.concat_map
    (fun (_, is) ->
      window_slices spec.Event_query.window is
      |> List.filter_map (fun (slice, _) ->
             let vals = List.filter_map (fun i -> numeric_of i.Instance.subst spec.Event_query.var) slice in
             let latest = List.nth slice (List.length slice - 1) in
             let* value = reduce spec.Event_query.op vals in
             match Subst.add spec.Event_query.bind (Xchange_data.Term.num value) latest.Instance.subst with
             | None -> None
             | Some subst ->
                 let first = List.hd slice in
                 Some
                   (Instance.timer subst ~t_start:first.Instance.t_start
                      ~t_end:latest.Instance.t_end
                      ~ids:
                        (List.sort_uniq Int.compare
                           (List.concat_map (fun i -> i.Instance.ids) slice)))))
    groups
  |> Instance.dedup

and eval_rises (spec : Event_query.rises_spec) history ~now =
  let over_vars = Event_query.vars spec.Event_query.r_over in
  let instances = arrival_sort (eval spec.Event_query.r_over history ~now) in
  let groups : (Subst.t * Instance.t list) list =
    List.fold_left
      (fun groups i ->
        match numeric_of i.Instance.subst spec.Event_query.r_var with
        | None -> groups
        | Some _ ->
            let key = group_key over_vars spec.Event_query.r_var i.Instance.subst in
            let rec insert = function
              | [] -> [ (key, [ i ]) ]
              | (k, is) :: rest ->
                  if Subst.equal k key then (k, is @ [ i ]) :: rest else (k, is) :: insert rest
            in
            insert groups)
      [] instances
  in
  let w = spec.Event_query.r_window in
  List.concat_map
    (fun (_, is) ->
      window_slices (w + 1) is
      |> List.filter_map (fun (slice, _) ->
             let vals = List.filter_map (fun i -> numeric_of i.Instance.subst spec.Event_query.r_var) slice in
             if List.length vals <> w + 1 then None
             else
               let* old_avg = avg_opt (List.filteri (fun j _ -> j < w) vals) in
               let* new_avg = avg_opt (List.filteri (fun j _ -> j >= 1) vals) in
               if new_avg < spec.Event_query.r_ratio *. old_avg then None
               else
                 let latest = List.nth slice w in
                 match
                   Subst.add spec.Event_query.r_bind (Xchange_data.Term.num new_avg)
                     latest.Instance.subst
                 with
                 | None -> None
                 | Some subst ->
                     let first = List.hd slice in
                     Some
                       (Instance.timer subst ~t_start:first.Instance.t_start
                          ~t_end:latest.Instance.t_end
                          ~ids:
                            (List.sort_uniq Int.compare
                               (List.concat_map (fun i -> i.Instance.ids) slice)))))
    groups
  |> Instance.dedup

let answers q history ~now = Instance.dedup (eval q history ~now)

let detections_per_event q events =
  let history = History.create () in
  let reported = ref [] in
  List.map
    (fun e ->
      History.add history e;
      let now = Event.time e in
      let all = answers q history ~now in
      let fresh = List.filter (fun i -> not (List.exists (Instance.equal i) !reported)) all in
      reported := fresh @ !reported;
      (e, fresh))
    events
