open Xchange_query

type selection = Each | First | Last

type input = Ev of Event.t | Now of Clock.time

module KTbl = Hashtbl.Make (struct
  type t = Subst.t

  let equal = Subst.equal
  let hash = Subst.hash
end)

type atom_matcher = Event.t -> Subst.set

type subtree_matcher = Event.t -> Instance.t list

(* Real payload-matcher executions (same pattern as Plan's work
   counters): the unshared path bumps it on every gated match, the
   shared alpha network only on memo misses — so the counter measures
   atomic evaluation work comparably across both modes.  Domain-local
   so sharded schedulers never contend; readers sum over domains. *)
let matcher_runs = Xchange_core.Domain_local.Counter.create ()

let note_atomic_run () = Xchange_core.Domain_local.Counter.incr matcher_runs
let atomic_matcher_runs () = Xchange_core.Domain_local.Counter.total matcher_runs
let reset_atomic_matcher_runs () = Xchange_core.Domain_local.Counter.reset matcher_runs

type node = {
  store : Istore.t;
      (** partial matches, arrival order; hash-partitioned by the join
          key the parent probes with (empty when [index] is off) *)
  bound : Clock.span option;  (** [Some s]: prune when older than [now - s]; [None]: keep *)
  kind : kind;
}

and kind =
  | NAtomic of atom_matcher
      (** envelope gating + payload matching, compiled once at build
          time (a {!Plan} when plan routing is on, the interpreter
          otherwise), so the per-event hot path skips even the global
          plan-cache lookup.  With [~share] the matcher is a shared
          alpha node: one evaluation per distinct atomic pattern per
          occurrence, fanned out to every subscribing rule. *)
  | NAnd of node list
  | NOr of node list
  | NSeq of node list
  | NWithin of node * Clock.span
  | NAbsent of absent_state
  | NTimes of int * node * Clock.span
  | NAgg of acc_state
  | NRises of acc_state
  | NShared of shared_sub
      (** the whole composite subtree is evaluated by a shared beta node
          ({!Xchange_rules.Beta}): one join pipeline per distinct
          (canonicalized) subtree, fanned out to every subscribing rule.
          Per-rule state shrinks to this projection: the parent-facing
          store plus consumption bookkeeping — consuming rules filter
          the shared output against their consumed event ids instead of
          purging the shared stores (equivalent for the timerless,
          accumulator-free subtrees the beta network accepts, because
          their detections are monotone functions of constituent ids). *)

and shared_sub = {
  sub_matcher : subtree_matcher;
  consumed : (int, unit) Hashtbl.t;
      (** event ids this rule consumed; shared detections touching any
          of them are filtered out of this rule's view *)
}

and absent_state = {
  a_start : node;
  a_blocker : node;
  a_span : Clock.span;
  mutable pending : (Clock.time * Instance.t) list;  (** (deadline, start instance) *)
}

and acc_state = {
  src : node;
  acc_var : string;
  acc_window : int;  (** values per aggregate; Rises keeps window+1 *)
  acc_op : Construct.agg option;  (** [None] for Rises *)
  acc_ratio : float;  (** Rises only *)
  acc_bind : string;
  src_vars : string list;
  groups : (float * Instance.t) list KTbl.t;
      (** group key -> retained (value, instance) entries, oldest first *)
}

(* ---- compilation ---------------------------------------------------- *)

(* Join keys: each child of an [And]/[Seq] is partitioned by the
   variables it shares with at least one sibling; a [Times] child by all
   its variables (instances of the same child must agree everywhere to
   combine); an [Absent] blocker by the variables it shares with the
   start.  Bucketing on any subset of the shared variables is sound —
   the probe only skips stored instances that bind every key variable to
   something the probing partial match conflicts with, and
   [Instance.combine] would have rejected exactly those — the key choice
   is purely a selectivity decision. *)
let shared_keys qs =
  let per_child = List.map Event_query.vars qs in
  List.mapi
    (fun i vs ->
      let others = List.concat (List.filteri (fun j _ -> j <> i) per_child) in
      List.sort_uniq String.compare (List.filter (fun v -> List.mem v others) vs))
    per_child

let inter_vars q1 q2 =
  let v1 = Event_query.vars q1 in
  List.sort_uniq String.compare (List.filter (fun v -> List.mem v v1) (Event_query.vars q2))

(* [ctx] is the span of the nearest enclosing window operator: children
   joined by And/Seq below it can be pruned once older than it.
   [stored_bound] is how long the parent keeps reading this node's
   stored instances (Some 0 when the parent only consumes fresh ones).
   [key] is the hash-partition key the parent probes this node's store
   with ([] = unpartitioned; always [] when [index] is off, so the
   naive path pays no bucket upkeep).

   Timer caveat: absence detections carry [t_end = deadline] but arrive
   at the first activity after it, so a sibling of a timer-bearing
   subtree may be joined arbitrarily late — such siblings (and the
   stored state joined with late instances generally) must not be
   window-pruned.  [has_timers] disables the window bound in exactly
   those places; an engine [horizon] still caps them (an explicit
   exactness/memory trade-off). *)
(* Envelope gate shared by both matcher paths. *)
let envelope_ok (a : Event_query.atomic) (e : Event.t) =
  (match a.Event_query.label with
  | Some l -> String.equal l e.Event.label
  | None -> true)
  &&
  match a.Event_query.sender with
  | Some s -> String.equal s e.Event.sender
  | None -> true

let rec build ?horizon ?share ?share_sub ~index ~ctx ~stored_bound ~key (q : Event_query.t)
    : node =
  let mk kind bound =
    { store = Istore.create ~key:(if index then key else []); bound; kind }
  in
  let effective_bound =
    match (stored_bound, horizon) with
    | Some b, Some h -> Some (min b h)
    | Some b, None -> Some b
    | None, h -> h
  in
  let join_children qs =
    (* a child may be pruned by the window only if no sibling can hand
       it a late (timer-completed) join partner *)
    let keys = shared_keys qs in
    List.mapi
      (fun i q ->
        let sibling_timers =
          List.exists Event_query.has_timers (List.filteri (fun j _ -> j <> i) qs)
        in
        let sb = if sibling_timers then None else ctx in
        build ?horizon ?share ?share_sub ~index ~ctx ~stored_bound:sb
          ~key:(List.nth keys i) q)
      qs
  in
  let child ?(key = []) ~ctx ~stored_bound q =
    build ?horizon ?share ?share_sub ~index ~ctx ~stored_bound ~key q
  in
  (* Composite subtrees first consult the shared beta network; it
     declines (returns [None]) subtrees whose semantics cannot be
     replayed per rule — timers, accumulators, horizon-incompatible
     retention — and those fall through to a private compilation.  The
     hook sees [ctx] because the enclosing window decides the internal
     pruning bounds the shared pipeline must replicate. *)
  let try_share () =
    match (share_sub, q) with
    | None, _ | _, Event_query.Atomic _ -> None
    | Some subscribe, _ ->
        subscribe ~ctx q
        |> Option.map (fun sub_matcher ->
               mk (NShared { sub_matcher; consumed = Hashtbl.create 8 }) effective_bound)
  in
  match try_share () with
  | Some node -> node
  | None -> (
  let compile_atomic (a : Event_query.atomic) : atom_matcher =
    match share with
    | Some subscribe -> subscribe a
    | None ->
        let payload_matches =
          match Simulate.plan a.Event_query.pattern with
          | Some p -> Plan.matches p
          | None -> fun payload -> Simulate.matches a.Event_query.pattern payload
        in
        fun e ->
          if not (envelope_ok a e) then []
          else begin
            note_atomic_run ();
            payload_matches e.Event.payload
          end
  in
  match q with
  | Event_query.Atomic a -> mk (NAtomic (compile_atomic a)) effective_bound
  | Event_query.And qs -> mk (NAnd (join_children qs)) effective_bound
  | Event_query.Seq qs -> mk (NSeq (join_children qs)) effective_bound
  | Event_query.Or qs ->
      mk (NOr (List.map (child ~ctx ~stored_bound:(Some 0)) qs)) effective_bound
  | Event_query.Within (q, span) ->
      let inner_ctx = if Event_query.has_timers q then None else Some span in
      mk (NWithin (child ~ctx:inner_ctx ~stored_bound:(Some 0) q, span)) effective_bound
  | Event_query.Absent (q1, q2, span) ->
      (* the span bounds when blockers matter relative to the start's
         END — it does not bound the start's own joins (ctx inherits) *)
      let blocker_bound = if Event_query.has_timers q1 then None else Some span in
      mk
        (NAbsent
           {
             a_start = child ~ctx ~stored_bound:(Some 0) q1;
             a_blocker =
               child ~key:(inter_vars q1 q2) ~ctx ~stored_bound:blocker_bound q2;
             a_span = span;
             pending = [];
           })
        effective_bound
  | Event_query.Times (n, q, span) ->
      let child_bound = if Event_query.has_timers q then None else Some span in
      let child_ctx = if Event_query.has_timers q then None else Some span in
      mk
        (NTimes
           ( n,
             child ~key:(Event_query.vars q) ~ctx:child_ctx ~stored_bound:child_bound q,
             span ))
        effective_bound
  | Event_query.Agg spec ->
      mk
        (NAgg
           {
             src = child ~ctx ~stored_bound:(Some 0) spec.Event_query.over;
             acc_var = spec.Event_query.var;
             acc_window = spec.Event_query.window;
             acc_op = Some spec.Event_query.op;
             acc_ratio = 1.;
             acc_bind = spec.Event_query.bind;
             src_vars = Event_query.vars spec.Event_query.over;
             groups = KTbl.create 16;
           })
        effective_bound
  | Event_query.Rises spec ->
      mk
        (NRises
           {
             src = child ~ctx ~stored_bound:(Some 0) spec.Event_query.r_over;
             acc_var = spec.Event_query.r_var;
             acc_window = spec.Event_query.r_window;
             acc_op = None;
             acc_ratio = spec.Event_query.r_ratio;
             acc_bind = spec.Event_query.r_bind;
             src_vars = Event_query.vars spec.Event_query.r_over;
             groups = KTbl.create 16;
           })
        effective_bound)

(* ---- joins ---------------------------------------------------------- *)

let prune node now =
  match node.bound with
  | None -> ()
  | Some b -> Istore.prune node.store ~keep_from:(now - b)

(* Tuples with at least one fresh component, each enumerated exactly
   once: the pivot is the first child contributing a fresh instance —
   children before it draw from stored instances only, the pivot from
   fresh only, children after it from both.

   The naive joiner below is the pre-refactor nested loop (kept behind
   [~index:false] as the reference the property suite compares against);
   the only addition is pair accounting so BENCH_event can report probed
   pairs for both paths under the same metric: candidates enumerated at
   every extension step. *)
let join_naive ~ordered pairs =
  let children_old_fresh =
    List.map (fun (c, fresh) -> (Istore.stats c.store, Istore.to_list c.store, fresh)) pairs
  in
  let n = List.length children_old_fresh in
  let pools pivot =
    List.mapi
      (fun i (st, old, fresh) ->
        (st, if i < pivot then old else if i = pivot then fresh else old @ fresh))
      children_old_fresh
  in
  let extend_tuples pools =
    match pools with
    | [] -> []
    | (st0, first) :: rest ->
        let rec extend acc last = function
          | [] -> [ acc ]
          | (st, instances) :: rest' ->
              List.concat_map
                (fun i ->
                  st.Istore.pairs_probed <- st.Istore.pairs_probed + 1;
                  if ordered && not (Instance.strictly_before last i) then []
                  else
                    match Instance.combine [ acc; i ] with
                    | Some c -> extend c i rest'
                    | None -> [])
                instances
        in
        List.concat_map
          (fun i ->
            st0.Istore.pairs_probed <- st0.Istore.pairs_probed + 1;
            extend i i rest)
          first
  in
  let rec per_pivot pivot acc =
    if pivot >= n then acc else per_pivot (pivot + 1) (extend_tuples (pools pivot) @ acc)
  in
  Instance.dedup (per_pivot 0 [])

(* Indexed join: grow each tuple outward from the pivot's fresh
   instance, probing every other child's store with the accumulated
   bindings — only the hash partition a candidate could merge with is
   enumerated, and for ordered (Seq) joins the probe binary-searches the
   time-compatible run instead of scanning out-of-order pairs.  The
   pools per child are exactly the naive joiner's (old-only left of the
   pivot, fresh-only at it, both right of it), so the result set is
   identical; enumeration order differs but both paths dedup. *)
let join_indexed ~ordered pairs =
  let arr = Array.of_list pairs in
  let n = Array.length arr in
  let results = ref [] in
  let rec go_left acc ~first j =
    if j < 0 then results := acc :: !results
    else
      let c, _ = arr.(j) in
      let before = if ordered then Some first else None in
      List.iter
        (fun cand ->
          match Instance.combine [ acc; cand ] with
          | Some acc' -> go_left acc' ~first:cand (j - 1)
          | None -> ())
        (Istore.probe ?before c.store acc.Instance.subst)
  in
  let rec go_right acc ~pivot_first ~last j ~pivot =
    if j >= n then go_left acc ~first:pivot_first (pivot - 1)
    else
      let c, fresh = arr.(j) in
      let extend cand =
        match Instance.combine [ acc; cand ] with
        | Some acc' -> go_right acc' ~pivot_first ~last:cand (j + 1) ~pivot
        | None -> ()
      in
      let after = if ordered then Some last else None in
      List.iter extend (Istore.probe ?after c.store acc.Instance.subst);
      List.iter
        (fun f -> if (not ordered) || Instance.strictly_before last f then extend f)
        fresh
  in
  Array.iteri
    (fun pivot (_, fresh) ->
      List.iter (fun f -> go_right f ~pivot_first:f ~last:f (pivot + 1) ~pivot) fresh)
    arr;
  Instance.dedup !results

let join_fresh ~index ~ordered pairs =
  if index then join_indexed ~ordered pairs else join_naive ~ordered pairs

(* Size-n subsets combining within [span] and containing at least one
   fresh instance: the pivot is the first fresh member (by position);
   the rest are drawn from the later fresh instances, then the stored
   pool — walked by index over one shared pool per mode instead of
   rebuilding [rest @ old] per pivot. *)
let times_fresh ~index n span child fresh =
  if n = 0 then []
  else begin
    let fresh_arr = Array.of_list fresh in
    let nf = Array.length fresh_arr in
    let naive_pool = if index || nf = 0 then [] else Istore.to_list child.store in
    let results = ref [] in
    let rec choose_old acc count pool =
      if count = 0 then results := acc :: !results
      else
        match pool with
        | [] -> ()
        | i :: rest ->
            (match Instance.combine [ acc; i ] with
            | Some c when Instance.span c <= span -> choose_old c (count - 1) rest
            | Some _ | None -> ());
            choose_old acc count rest
    in
    let rec choose_fresh acc count k ~old =
      if count = 0 then results := acc :: !results
      else if k >= nf then choose_old acc count old
      else begin
        (match Instance.combine [ acc; fresh_arr.(k) ] with
        | Some c when Instance.span c <= span -> choose_fresh c (count - 1) (k + 1) ~old
        | Some _ | None -> ());
        choose_fresh acc count (k + 1) ~old
      end
    in
    for j = 0 to nf - 1 do
      let f = fresh_arr.(j) in
      let old =
        if index then Istore.probe child.store f.Instance.subst
        else begin
          Istore.note_scan child.store;
          naive_pool
        end
      in
      choose_fresh f (n - 1) (j + 1) ~old
    done;
    Instance.dedup !results
  end

(* ---- accumulation --------------------------------------------------- *)

let numeric_of subst var = Option.bind (Subst.find var subst) Xchange_data.Term.as_num

(* every reduction is guarded against an empty value list: an average
   (or min/max) over zero values must yield no binding, never a
   nan/infinity that silently poisons downstream substitutions *)
let avg_opt = function
  | [] -> None
  | vals -> Some (List.fold_left ( +. ) 0. vals /. float_of_int (List.length vals))

let reduce op vals =
  match vals with
  | [] -> None
  | _ -> (
      match op with
      | Construct.Count -> Some (float_of_int (List.length vals))
      | Construct.Sum -> Some (List.fold_left ( +. ) 0. vals)
      | Construct.Avg -> avg_opt vals
      | Construct.Min -> Some (List.fold_left Float.min Float.infinity vals)
      | Construct.Max -> Some (List.fold_left Float.max Float.neg_infinity vals))

let group_key st subst =
  Subst.restrict (List.filter (fun v -> not (String.equal v st.acc_var)) st.src_vars) subst

let rec drop_first k l = if k <= 0 then l else match l with [] -> [] | _ :: tl -> drop_first (k - 1) tl

let last_n n l =
  let len = List.length l in
  if len <= n then l else drop_first (len - n) l

let acc_feed st fresh =
  (* process fresh source instances in canonical order (matches the
     Backward arrival sort for time-ordered streams) *)
  let fresh = List.sort Instance.compare fresh in
  let keep = match st.acc_op with Some _ -> st.acc_window | None -> st.acc_window + 1 in
  List.concat_map
    (fun i ->
      match numeric_of i.Instance.subst st.acc_var with
      | None -> []
      | Some v ->
          let key = group_key st i.Instance.subst in
          let entries =
            match KTbl.find_opt st.groups key with Some es -> es | None -> []
          in
          let entries = last_n (keep - 1) entries @ [ (v, i) ] in
          KTbl.replace st.groups key entries;
          let vals = List.map fst entries in
          let emit value slice =
            let latest = snd (List.nth slice (List.length slice - 1)) in
            match Subst.add st.acc_bind (Xchange_data.Term.num value) latest.Instance.subst with
            | None -> []
            | Some subst ->
                let first = snd (List.hd slice) in
                [
                  Instance.timer subst ~t_start:first.Instance.t_start
                    ~t_end:latest.Instance.t_end
                    ~ids:
                      (List.sort_uniq Int.compare
                         (List.concat_map (fun (_, i) -> i.Instance.ids) slice));
                ]
          in
          (match st.acc_op with
          | Some op ->
              if List.length entries < st.acc_window then []
              else
                let slice = last_n st.acc_window entries in
                let vals = last_n st.acc_window vals in
                (match reduce op vals with
                | None -> []
                | Some value -> emit value slice)
          | None ->
              let w = st.acc_window in
              if List.length entries < w + 1 then []
              else
                let slice = last_n (w + 1) entries in
                let vals = last_n (w + 1) vals in
                (match (avg_opt (List.filteri (fun j _ -> j < w) vals),
                        avg_opt (List.filteri (fun j _ -> j >= 1) vals))
                 with
                | Some old_avg, Some new_avg when new_avg >= st.acc_ratio *. old_avg ->
                    emit new_avg slice
                | _ -> [])))
    fresh

(* ---- stepping ------------------------------------------------------- *)

(* [fresh_of] computes a node's fresh instances WITHOUT pruning or
   storing; [step] prunes first and appends the fresh instances after.
   Join parents use [fresh_of] on their children so they can probe the
   child stores as the "old" pools while the children's fresh instances
   are still separate lists (the pivot bookkeeping above) — and they
   prune each child only AFTER the join, so the probed pool is exactly
   the pool the pre-refactor engine captured before its child step
   pruned.  That one-step staleness is load-bearing: an event fed after
   the clock has already advanced past its time (repeated timestamps,
   an [advance_to] between feeds) must still find the partners that
   were live at ITS time, not at the clock's. *)
let rec fresh_of ~index node input ~now : Instance.t list =
  match node.kind with
  | NAtomic matcher -> (
      match input with
      | Now _ -> []
      | Ev e ->
          matcher e
          |> List.map (fun subst -> Instance.atomic subst (Event.time e) e.Event.id))
  | NShared st -> (
      match input with
      | Now _ ->
          (* the beta network only shares timerless subtrees, which
             never produce on a bare clock advance *)
          []
      | Ev e ->
          let out = st.sub_matcher e in
          if Hashtbl.length st.consumed = 0 then out
          else
            List.filter
              (fun i -> not (List.exists (Hashtbl.mem st.consumed) i.Instance.ids))
              out)
  | NAnd children -> join_children ~index ~ordered:false children input ~now
  | NSeq children -> join_children ~index ~ordered:true children input ~now
  | NOr children ->
      Instance.dedup (List.concat_map (fun c -> step ~index c input ~now) children)
  | NWithin (child, span) ->
      List.filter (fun i -> Instance.span i <= span) (step ~index child input ~now)
  | NAbsent st ->
      let fresh_starts = step ~index st.a_start input ~now in
      let fresh_blockers = fresh_of ~index st.a_blocker input ~now in
      let blocks i1 deadline i2 =
        Instance.strictly_before i1 i2
        && i2.Instance.t_start <= deadline
        && Option.is_some (Subst.merge i1.Instance.subst i2.Instance.subst)
      in
      (* fresh blockers cancel pending starts they join with *)
      st.pending <-
        List.filter
          (fun (deadline, i1) ->
            not (List.exists (blocks i1 deadline) fresh_blockers))
          st.pending;
      (* fresh starts become pending unless an already-seen blocker
         (stored or same-feed) blocks them *)
      List.iter
        (fun i1 ->
          let deadline = Clock.add i1.Instance.t_end st.a_span in
          let stored_blockers =
            if index then Istore.probe ~after:i1 st.a_blocker.store i1.Instance.subst
            else Istore.scan st.a_blocker.store
          in
          let blocked =
            List.exists (blocks i1 deadline) stored_blockers
            || List.exists (blocks i1 deadline) fresh_blockers
          in
          if not blocked then st.pending <- (deadline, i1) :: st.pending)
        fresh_starts;
      prune st.a_blocker now;
      Istore.add_list st.a_blocker.store fresh_blockers;
      (* resolve deadlines: strictly past on event feeds (an event at
         exactly the deadline could still block), inclusive on explicit
         time advances *)
      let ripe deadline =
        match input with Ev e -> deadline < Event.time e | Now t -> deadline <= t
      in
      let done_, waiting = List.partition (fun (d, _) -> ripe d) st.pending in
      st.pending <- waiting;
      List.map
        (fun (deadline, i1) ->
          Instance.timer i1.Instance.subst ~t_start:i1.Instance.t_start ~t_end:deadline
            ~ids:i1.Instance.ids)
        done_
      |> Instance.dedup
  | NTimes (n, child, span) ->
      let fresh = fresh_of ~index child input ~now in
      let out = times_fresh ~index n span child fresh in
      prune child now;
      Istore.add_list child.store fresh;
      out
  | NAgg st | NRises st ->
      let fresh = step ~index st.src input ~now in
      Instance.dedup (acc_feed st fresh)

and join_children ~index ~ordered children input ~now =
  let pairs = List.map (fun c -> (c, fresh_of ~index c input ~now)) children in
  let out = join_fresh ~index ~ordered pairs in
  List.iter
    (fun (c, fr) ->
      prune c now;
      Istore.add_list c.store fr)
    pairs;
  out

and step ~index node input ~now =
  prune node now;
  let fresh = fresh_of ~index node input ~now in
  Istore.add_list node.store fresh;
  fresh

(* ---- engine --------------------------------------------------------- *)

type t = {
  q : Event_query.t;
  root : node;
  consume : bool;
  selection : selection;
  index : bool;
  mutable clock : Clock.time;
  mutable seen : int;
  mutable reported : int;
}

let create ?(consume = false) ?(selection = Each) ?horizon ?(index = true) ?share
    ?share_sub q =
  match Event_query.validate q with
  | Error e -> Error e
  | Ok () ->
      Ok
        {
          q;
          root =
            build ?horizon ?share ?share_sub ~index ~ctx:None ~stored_bound:(Some 0)
              ~key:[] q;
          consume;
          selection;
          index;
          clock = Clock.origin;
          seen = 0;
          reported = 0;
        }

let create_exn ?consume ?selection ?horizon ?index ?share ?share_sub q =
  match create ?consume ?selection ?horizon ?index ?share ?share_sub q with
  | Ok t -> t
  | Error e -> invalid_arg ("Incremental.create: " ^ e)

(* The engine a shared beta node runs internally: compiled below the
   enclosing-window context [ctx] of the original occurrence so the
   internal pruning bounds match the private compilation it replaces.
   No [share_sub]: nesting a shared node inside the pipeline that backs
   it would recurse through the beta network forever — the pipeline
   shares atoms (via [share]) and nothing else.  The subtree comes from
   an already-validated rule query, so validation is skipped. *)
let create_sub ?horizon ?(index = true) ?share ~ctx q =
  {
    q;
    root = build ?horizon ?share ~index ~ctx ~stored_bound:(Some 0) ~key:[] q;
    consume = false;
    selection = Each;
    index;
    clock = Clock.origin;
    seen = 0;
    reported = 0;
  }

let rec purge_ids node ids =
  let untouched i = not (List.exists (fun id -> List.mem id ids) i.Instance.ids) in
  Istore.filter_inplace untouched node.store;
  match node.kind with
  | NAtomic _ -> ()
  | NShared st ->
      (* never purge the shared pipeline (other subscribers may not
         consume); remember the ids and filter this rule's view *)
      List.iter (fun id -> Hashtbl.replace st.consumed id ()) ids
  | NAnd cs | NOr cs | NSeq cs -> List.iter (fun c -> purge_ids c ids) cs
  | NWithin (c, _) -> purge_ids c ids
  | NTimes (_, c, _) -> purge_ids c ids
  | NAbsent st ->
      st.pending <- List.filter (fun (_, i) -> untouched i) st.pending;
      purge_ids st.a_start ids;
      purge_ids st.a_blocker ids
  | NAgg st | NRises st ->
      KTbl.filter_map_inplace
        (fun _ entries ->
          match List.filter (fun (_, i) -> untouched i) entries with
          | [] -> None
          | kept -> Some kept)
        st.groups;
      purge_ids st.src ids

let select_and_consume t detections =
  let picked =
    match (t.selection, detections) with
    | _, [] -> []
    | Each, ds -> ds
    | First, ds ->
        [ List.fold_left (fun best d -> if Instance.compare d best < 0 then d else best) (List.hd ds) ds ]
    | Last, ds ->
        [ List.fold_left (fun best d -> if Instance.compare d best > 0 then d else best) (List.hd ds) ds ]
  in
  let picked =
    if not t.consume then picked
    else
      (* consume left to right; drop detections sharing events with an
         already-consumed one *)
      List.fold_left
        (fun kept d ->
          let clashes = List.exists (fun k -> not (Instance.disjoint_ids k d)) kept in
          if clashes then kept
          else begin
            purge_ids t.root d.Instance.ids;
            kept @ [ d ]
          end)
        [] picked
  in
  t.reported <- t.reported + List.length picked;
  picked

let feed t e =
  t.seen <- t.seen + 1;
  if Event.time e > t.clock then t.clock <- Event.time e;
  let detections = step ~index:t.index t.root (Ev e) ~now:t.clock in
  select_and_consume t detections

let advance_to t time =
  if time > t.clock then t.clock <- time;
  let detections = step ~index:t.index t.root (Now time) ~now:t.clock in
  select_and_consume t detections

let query t = t.q
let now t = t.clock

let rec count_node node =
  let own = Istore.length node.store in
  match node.kind with
  | NAtomic _ -> own
  | NShared _ -> own (* the shared pipeline's state is Beta's to report *)
  | NAnd cs | NOr cs | NSeq cs -> List.fold_left (fun acc c -> acc + count_node c) own cs
  | NWithin (c, _) | NTimes (_, c, _) -> own + count_node c
  | NAbsent st -> own + List.length st.pending + count_node st.a_start + count_node st.a_blocker
  | NAgg st | NRises st ->
      own
      + KTbl.fold (fun _ entries acc -> acc + List.length entries) st.groups 0
      + count_node st.src

let live_instances t = count_node t.root
let events_seen t = t.seen
let detections_reported t = t.reported

(* ---- join observability --------------------------------------------- *)

type join_stats = {
  probes : int;
  pairs_probed : int;
  pairs_skipped : int;
  instances_pruned : int;
  buckets : int;
  keyed_nodes : int;
}

let zero_join_stats =
  { probes = 0; pairs_probed = 0; pairs_skipped = 0; instances_pruned = 0; buckets = 0; keyed_nodes = 0 }

let add_join_stats acc store =
  let st = Istore.stats store in
  {
    probes = acc.probes + st.Istore.probes;
    pairs_probed = acc.pairs_probed + st.Istore.pairs_probed;
    pairs_skipped = acc.pairs_skipped + st.Istore.pairs_skipped;
    instances_pruned = acc.instances_pruned + st.Istore.pruned;
    buckets = acc.buckets + Istore.buckets store;
    keyed_nodes = (acc.keyed_nodes + if Istore.key store = [] then 0 else 1);
  }

let rec node_join_stats acc node =
  let acc = add_join_stats acc node.store in
  match node.kind with
  | NAtomic _ | NShared _ -> acc
  | NAnd cs | NOr cs | NSeq cs -> List.fold_left node_join_stats acc cs
  | NWithin (c, _) | NTimes (_, c, _) -> node_join_stats acc c
  | NAbsent st -> node_join_stats (node_join_stats acc st.a_start) st.a_blocker
  | NAgg st | NRises st -> node_join_stats acc st.src

let join_stats t = node_join_stats zero_join_stats t.root

let sum_join_stats l =
  List.fold_left
    (fun a b ->
      {
        probes = a.probes + b.probes;
        pairs_probed = a.pairs_probed + b.pairs_probed;
        pairs_skipped = a.pairs_skipped + b.pairs_skipped;
        instances_pruned = a.instances_pruned + b.instances_pruned;
        buckets = a.buckets + b.buckets;
        keyed_nodes = a.keyed_nodes + b.keyed_nodes;
      })
    zero_join_stats l

let min_opt a b =
  match (a, b) with None, x | x, None -> x | Some x, Some y -> Some (min x y)

let rec node_deadline node =
  match node.kind with
  | NAtomic _ | NShared _ -> None (* shared subtrees are timerless by construction *)
  | NAnd cs | NOr cs | NSeq cs ->
      List.fold_left (fun acc c -> min_opt acc (node_deadline c)) None cs
  | NWithin (c, _) | NTimes (_, c, _) -> node_deadline c
  | NAbsent st ->
      let own =
        List.fold_left
          (fun acc (deadline, _) -> min_opt acc (Some deadline))
          None st.pending
      in
      min_opt own (min_opt (node_deadline st.a_start) (node_deadline st.a_blocker))
  | NAgg st | NRises st -> node_deadline st.src

let next_deadline t = node_deadline t.root
