open Xchange_query

type selection = Each | First | Last

type input = Ev of Event.t | Now of Clock.time

type node = {
  mutable stored : Instance.t list;  (** newest last; pruned by [bound] *)
  bound : Clock.span option;  (** [Some s]: prune when older than [now - s]; [None]: keep *)
  kind : kind;
}

and kind =
  | NAtomic of Event_query.atomic
  | NAnd of node list
  | NOr of node list
  | NSeq of node list
  | NWithin of node * Clock.span
  | NAbsent of absent_state
  | NTimes of int * node * Clock.span
  | NAgg of acc_state
  | NRises of acc_state

and absent_state = {
  a_start : node;
  a_blocker : node;
  a_span : Clock.span;
  mutable pending : (Clock.time * Instance.t) list;  (** (deadline, start instance) *)
}

and acc_state = {
  src : node;
  acc_var : string;
  acc_window : int;  (** values per aggregate; Rises keeps window+1 *)
  acc_op : Construct.agg option;  (** [None] for Rises *)
  acc_ratio : float;  (** Rises only *)
  acc_bind : string;
  src_vars : string list;
  mutable groups : (Subst.t * (float * Instance.t) list) list;
      (** group key -> retained (value, instance) entries, oldest first *)
}

(* ---- compilation ---------------------------------------------------- *)

(* [ctx] is the span of the nearest enclosing window operator: children
   joined by And/Seq below it can be pruned once older than it.
   [stored_bound] is how long the parent keeps reading this node's
   stored instances (Some 0 when the parent only consumes fresh ones).

   Timer caveat: absence detections carry [t_end = deadline] but arrive
   at the first activity after it, so a sibling of a timer-bearing
   subtree may be joined arbitrarily late — such siblings (and the
   stored state joined with late instances generally) must not be
   window-pruned.  [has_timers] disables the window bound in exactly
   those places; an engine [horizon] still caps them (an explicit
   exactness/memory trade-off). *)
let rec build ?horizon ~ctx ~stored_bound (q : Event_query.t) : node =
  let mk kind bound = { stored = []; bound; kind } in
  let effective_bound =
    match (stored_bound, horizon) with
    | Some b, Some h -> Some (min b h)
    | Some b, None -> Some b
    | None, h -> h
  in
  let join_children qs =
    (* a child may be pruned by the window only if no sibling can hand
       it a late (timer-completed) join partner *)
    List.mapi
      (fun i q ->
        let sibling_timers =
          List.exists Event_query.has_timers (List.filteri (fun j _ -> j <> i) qs)
        in
        let sb = if sibling_timers then None else ctx in
        build ?horizon ~ctx ~stored_bound:sb q)
      qs
  in
  match q with
  | Event_query.Atomic a -> mk (NAtomic a) effective_bound
  | Event_query.And qs -> mk (NAnd (join_children qs)) effective_bound
  | Event_query.Seq qs -> mk (NSeq (join_children qs)) effective_bound
  | Event_query.Or qs ->
      mk (NOr (List.map (build ?horizon ~ctx ~stored_bound:(Some 0)) qs)) effective_bound
  | Event_query.Within (q, span) ->
      let inner_ctx = if Event_query.has_timers q then None else Some span in
      mk (NWithin (build ?horizon ~ctx:inner_ctx ~stored_bound:(Some 0) q, span)) effective_bound
  | Event_query.Absent (q1, q2, span) ->
      (* the span bounds when blockers matter relative to the start's
         END — it does not bound the start's own joins (ctx inherits) *)
      let blocker_bound = if Event_query.has_timers q1 then None else Some span in
      mk
        (NAbsent
           {
             a_start = build ?horizon ~ctx ~stored_bound:(Some 0) q1;
             a_blocker = build ?horizon ~ctx ~stored_bound:blocker_bound q2;
             a_span = span;
             pending = [];
           })
        effective_bound
  | Event_query.Times (n, q, span) ->
      let child_bound = if Event_query.has_timers q then None else Some span in
      let child_ctx = if Event_query.has_timers q then None else Some span in
      mk (NTimes (n, build ?horizon ~ctx:child_ctx ~stored_bound:child_bound q, span)) effective_bound
  | Event_query.Agg spec ->
      mk
        (NAgg
           {
             src = build ?horizon ~ctx ~stored_bound:(Some 0) spec.Event_query.over;
             acc_var = spec.Event_query.var;
             acc_window = spec.Event_query.window;
             acc_op = Some spec.Event_query.op;
             acc_ratio = 1.;
             acc_bind = spec.Event_query.bind;
             src_vars = Event_query.vars spec.Event_query.over;
             groups = [];
           })
        effective_bound
  | Event_query.Rises spec ->
      mk
        (NRises
           {
             src = build ?horizon ~ctx ~stored_bound:(Some 0) spec.Event_query.r_over;
             acc_var = spec.Event_query.r_var;
             acc_window = spec.Event_query.r_window;
             acc_op = None;
             acc_ratio = spec.Event_query.r_ratio;
             acc_bind = spec.Event_query.r_bind;
             src_vars = Event_query.vars spec.Event_query.r_over;
             groups = [];
           })
        effective_bound

(* ---- stepping ------------------------------------------------------- *)

let prune node now =
  match node.bound with
  | None -> ()
  | Some b -> node.stored <- List.filter (fun i -> i.Instance.t_end >= now - b) node.stored

let store node fresh = node.stored <- node.stored @ fresh

(* Tuples with at least one fresh component, each enumerated exactly
   once: the pivot is the first child contributing a fresh instance. *)
let join_fresh ~ordered children_old_fresh =
  let n = List.length children_old_fresh in
  let pools pivot =
    List.mapi
      (fun i (old, fresh) ->
        if i < pivot then old else if i = pivot then fresh else old @ fresh)
      children_old_fresh
  in
  let extend_tuples pools =
    match pools with
    | [] -> []
    | first :: rest ->
        let rec extend acc last = function
          | [] -> [ acc ]
          | instances :: rest' ->
              List.concat_map
                (fun i ->
                  if ordered && not (Instance.strictly_before last i) then []
                  else
                    match Instance.combine [ acc; i ] with
                    | Some c -> extend c i rest'
                    | None -> [])
                instances
        in
        List.concat_map (fun i -> extend i i rest) first
  in
  let rec per_pivot pivot acc =
    if pivot >= n then acc else per_pivot (pivot + 1) (extend_tuples (pools pivot) @ acc)
  in
  Instance.dedup (per_pivot 0 [])

(* Size-n subsets combining within [span] and containing at least one
   fresh instance: choose k >= 1 fresh and n-k old. *)
let times_fresh n span old fresh =
  let rec choose acc count pool =
    if count = 0 then [ acc ]
    else
      match pool with
      | [] -> []
      | i :: rest ->
          let with_i =
            match Instance.combine [ acc; i ] with
            | Some c when Instance.span c <= span -> choose c (count - 1) rest
            | Some _ | None -> []
          in
          with_i @ choose acc count rest
  in
  (* enumerate: first fresh element picked by position in [fresh]; the
     rest drawn from (later fresh ++ old) *)
  let rec per_first = function
    | [] -> []
    | f :: rest -> choose f (n - 1) (rest @ old) @ per_first rest
  in
  if n = 0 then [] else Instance.dedup (per_first fresh)

let numeric_of subst var = Option.bind (Subst.find var subst) Xchange_data.Term.as_num
let avg vals = List.fold_left ( +. ) 0. vals /. float_of_int (List.length vals)

let group_key st subst =
  Subst.restrict (List.filter (fun v -> not (String.equal v st.acc_var)) st.src_vars) subst

let last_n n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let acc_feed st fresh =
  (* process fresh source instances in canonical order (matches the
     Backward arrival sort for time-ordered streams) *)
  let fresh = List.sort Instance.compare fresh in
  let keep = (match st.acc_op with Some _ -> st.acc_window | None -> st.acc_window + 1) in
  List.concat_map
    (fun i ->
      match numeric_of i.Instance.subst st.acc_var with
      | None -> []
      | Some v ->
          let key = group_key st i.Instance.subst in
          let entries =
            match List.find_opt (fun (k, _) -> Subst.equal k key) st.groups with
            | Some (_, es) -> es
            | None -> []
          in
          let entries = last_n (keep - 1) entries @ [ (v, i) ] in
          st.groups <-
            (key, entries) :: List.filter (fun (k, _) -> not (Subst.equal k key)) st.groups;
          let vals = List.map fst entries in
          let emit value slice =
            let latest = snd (List.nth slice (List.length slice - 1)) in
            match Subst.add st.acc_bind (Xchange_data.Term.num value) latest.Instance.subst with
            | None -> []
            | Some subst ->
                let first = snd (List.hd slice) in
                [
                  Instance.timer subst ~t_start:first.Instance.t_start
                    ~t_end:latest.Instance.t_end
                    ~ids:
                      (List.sort_uniq Int.compare
                         (List.concat_map (fun (_, i) -> i.Instance.ids) slice));
                ]
          in
          (match st.acc_op with
          | Some op ->
              if List.length entries < st.acc_window then []
              else
                let slice = last_n st.acc_window entries in
                let vals = last_n st.acc_window vals in
                let value =
                  match op with
                  | Construct.Count -> float_of_int (List.length vals)
                  | Construct.Sum -> List.fold_left ( +. ) 0. vals
                  | Construct.Avg -> avg vals
                  | Construct.Min -> List.fold_left Float.min Float.infinity vals
                  | Construct.Max -> List.fold_left Float.max Float.neg_infinity vals
                in
                emit value slice
          | None ->
              let w = st.acc_window in
              if List.length entries < w + 1 then []
              else
                let slice = last_n (w + 1) entries in
                let vals = last_n (w + 1) vals in
                let old_avg = avg (List.filteri (fun j _ -> j < w) vals) in
                let new_avg = avg (List.filteri (fun j _ -> j >= 1) vals) in
                if new_avg >= st.acc_ratio *. old_avg then emit new_avg slice else []))
    fresh

let rec step node input ~now : Instance.t list =
  prune node now;
  let fresh =
    match node.kind with
    | NAtomic a -> (
        match input with
        | Now _ -> []
        | Ev e ->
            let label_ok =
              match a.Event_query.label with
              | Some l -> String.equal l e.Event.label
              | None -> true
            in
            let sender_ok =
              match a.Event_query.sender with
              | Some s -> String.equal s e.Event.sender
              | None -> true
            in
            if not (label_ok && sender_ok) then []
            else
              Simulate.matches a.Event_query.pattern e.Event.payload
              |> List.map (fun subst -> Instance.atomic subst (Event.time e) e.Event.id))
    | NAnd children ->
        let old_fresh =
          List.map
            (fun c ->
              let old = c.stored in
              let fresh = step c input ~now in
              (old, fresh))
            children
        in
        join_fresh ~ordered:false old_fresh
    | NSeq children ->
        let old_fresh =
          List.map
            (fun c ->
              let old = c.stored in
              let fresh = step c input ~now in
              (old, fresh))
            children
        in
        join_fresh ~ordered:true old_fresh
    | NOr children -> Instance.dedup (List.concat_map (fun c -> step c input ~now) children)
    | NWithin (child, span) ->
        List.filter (fun i -> Instance.span i <= span) (step child input ~now)
    | NAbsent st ->
        let blocker_old = st.a_blocker.stored in
        let fresh_starts = step st.a_start input ~now in
        let fresh_blockers = step st.a_blocker input ~now in
        (* fresh blockers cancel pending starts they join with *)
        st.pending <-
          List.filter
            (fun (deadline, i1) ->
              not
                (List.exists
                   (fun i2 ->
                     Instance.strictly_before i1 i2
                     && i2.Instance.t_start <= deadline
                     && Option.is_some (Subst.merge i1.Instance.subst i2.Instance.subst))
                   fresh_blockers))
            st.pending;
        (* fresh starts become pending unless an already-seen blocker
           (stored or same-feed) blocks them *)
        let all_blockers = blocker_old @ fresh_blockers in
        List.iter
          (fun i1 ->
            let deadline = Clock.add i1.Instance.t_end st.a_span in
            let blocked =
              List.exists
                (fun i2 ->
                  Instance.strictly_before i1 i2
                  && i2.Instance.t_start <= deadline
                  && Option.is_some (Subst.merge i1.Instance.subst i2.Instance.subst))
                all_blockers
            in
            if not blocked then st.pending <- (deadline, i1) :: st.pending)
          fresh_starts;
        (* resolve deadlines: strictly past on event feeds (an event at
           exactly the deadline could still block), inclusive on explicit
           time advances *)
        let ripe deadline =
          match input with Ev e -> deadline < Event.time e | Now t -> deadline <= t
        in
        let done_, waiting = List.partition (fun (d, _) -> ripe d) st.pending in
        st.pending <- waiting;
        List.map
          (fun (deadline, i1) ->
            Instance.timer i1.Instance.subst ~t_start:i1.Instance.t_start ~t_end:deadline
              ~ids:i1.Instance.ids)
          done_
        |> Instance.dedup
    | NTimes (n, child, span) ->
        let old = child.stored in
        let fresh = step child input ~now in
        times_fresh n span old fresh
    | NAgg st | NRises st ->
        let fresh = step st.src input ~now in
        Instance.dedup (acc_feed st fresh)
  in
  store node fresh;
  fresh

(* ---- engine --------------------------------------------------------- *)

type t = {
  q : Event_query.t;
  root : node;
  consume : bool;
  selection : selection;
  mutable clock : Clock.time;
  mutable seen : int;
  mutable reported : int;
}

let create ?(consume = false) ?(selection = Each) ?horizon q =
  match Event_query.validate q with
  | Error e -> Error e
  | Ok () ->
      Ok
        {
          q;
          root = build ?horizon ~ctx:None ~stored_bound:(Some 0) q;
          consume;
          selection;
          clock = Clock.origin;
          seen = 0;
          reported = 0;
        }

let create_exn ?consume ?selection ?horizon q =
  match create ?consume ?selection ?horizon q with
  | Ok t -> t
  | Error e -> invalid_arg ("Incremental.create: " ^ e)

let rec purge_ids node ids =
  let untouched i = not (List.exists (fun id -> List.mem id ids) i.Instance.ids) in
  node.stored <- List.filter untouched node.stored;
  match node.kind with
  | NAtomic _ -> ()
  | NAnd cs | NOr cs | NSeq cs -> List.iter (fun c -> purge_ids c ids) cs
  | NWithin (c, _) -> purge_ids c ids
  | NTimes (_, c, _) -> purge_ids c ids
  | NAbsent st ->
      st.pending <- List.filter (fun (_, i) -> untouched i) st.pending;
      purge_ids st.a_start ids;
      purge_ids st.a_blocker ids
  | NAgg st | NRises st ->
      st.groups <-
        List.filter_map
          (fun (k, entries) ->
            match List.filter (fun (_, i) -> untouched i) entries with
            | [] -> None
            | kept -> Some (k, kept))
          st.groups;
      purge_ids st.src ids

let select_and_consume t detections =
  let picked =
    match (t.selection, detections) with
    | _, [] -> []
    | Each, ds -> ds
    | First, ds ->
        [ List.fold_left (fun best d -> if Instance.compare d best < 0 then d else best) (List.hd ds) ds ]
    | Last, ds ->
        [ List.fold_left (fun best d -> if Instance.compare d best > 0 then d else best) (List.hd ds) ds ]
  in
  let picked =
    if not t.consume then picked
    else
      (* consume left to right; drop detections sharing events with an
         already-consumed one *)
      List.fold_left
        (fun kept d ->
          let clashes = List.exists (fun k -> not (Instance.disjoint_ids k d)) kept in
          if clashes then kept
          else begin
            purge_ids t.root d.Instance.ids;
            kept @ [ d ]
          end)
        [] picked
  in
  t.reported <- t.reported + List.length picked;
  picked

let feed t e =
  t.seen <- t.seen + 1;
  if Event.time e > t.clock then t.clock <- Event.time e;
  let detections = step t.root (Ev e) ~now:t.clock in
  select_and_consume t detections

let advance_to t time =
  if time > t.clock then t.clock <- time;
  let detections = step t.root (Now time) ~now:t.clock in
  select_and_consume t detections

let query t = t.q
let now t = t.clock

let rec count_node node =
  let own = List.length node.stored in
  match node.kind with
  | NAtomic _ -> own
  | NAnd cs | NOr cs | NSeq cs -> List.fold_left (fun acc c -> acc + count_node c) own cs
  | NWithin (c, _) | NTimes (_, c, _) -> own + count_node c
  | NAbsent st -> own + List.length st.pending + count_node st.a_start + count_node st.a_blocker
  | NAgg st | NRises st ->
      own
      + List.fold_left (fun acc (_, entries) -> acc + List.length entries) 0 st.groups
      + count_node st.src

let live_instances t = count_node t.root
let events_seen t = t.seen
let detections_reported t = t.reported

let min_opt a b =
  match (a, b) with None, x | x, None -> x | Some x, Some y -> Some (min x y)

let rec node_deadline node =
  match node.kind with
  | NAtomic _ -> None
  | NAnd cs | NOr cs | NSeq cs ->
      List.fold_left (fun acc c -> min_opt acc (node_deadline c)) None cs
  | NWithin (c, _) | NTimes (_, c, _) -> node_deadline c
  | NAbsent st ->
      let own =
        List.fold_left
          (fun acc (deadline, _) -> min_opt acc (Some deadline))
          None st.pending
      in
      min_opt own (min_opt (node_deadline st.a_start) (node_deadline st.a_blocker))
  | NAgg st | NRises st -> node_deadline st.src

let next_deadline t = node_deadline t.root
