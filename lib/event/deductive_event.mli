(** Deductive rules for events (Thesis 9).

    An event view derives a higher-level event from a pattern of
    lower-level ones, mirroring what deductive rules do for Web data:
    "the same advantages apply for querying and reasoning with event
    data".  A derivation rule pairs an event query (the trigger) with a
    construct term building the payload of the derived event.

    Thesis 9 explicitly allows the language to "be more restrictive
    about rules for events for efficiency reasons (e.g., reject
    recursive rules)" — {!compile} rejects programs in which a derived
    event label can (transitively) trigger its own derivation. *)

open Xchange_query

type rule = {
  name : string;
  derived_label : string;  (** label of the event this rule derives *)
  trigger : Event_query.t;
  payload : Construct.t;  (** instantiated with each detection's bindings *)
}

type program = rule list

type t
(** A compiled, stratified derivation network. *)

val rule :
  name:string -> derives:string -> trigger:Event_query.t -> payload:Construct.t -> rule

val dependencies : program -> (string * string list) list
(** Derived label -> labels of the atomic event queries triggering it
    (a [None] label in an atomic query is reported as ["*"] and makes
    the rule depend on every label). *)

val compile :
  ?horizon:Clock.span ->
  ?index:bool ->
  ?share:(Event_query.atomic -> Incremental.atom_matcher) ->
  ?share_sub:(ctx:Clock.span option -> Event_query.t -> Incremental.subtree_matcher option) ->
  ?fresh_id:(unit -> int) ->
  program ->
  (t, string) result
(** Fails on recursive programs (including rules triggered by ["*"]
    wildcard atomic queries, which would always be recursive) and on
    invalid trigger queries.  [index], [share] and [share_sub] are
    forwarded to each trigger's {!Incremental.create}
    (hash-partitioned joins, shared alpha matchers, shared beta
    pipelines; [index] defaults to true).  [fresh_id] allocates
    derived-event ids (typically the owning node's origin lane, see
    {!Event.scoped_id}); defaults to the global [Event] counter. *)

val feed : t -> Event.t -> Event.t list
(** Processes one external event and returns all derived events
    (cascading through strata), in derivation order.  Derived events
    carry the triggering detection's time and the deriving rule's name
    as sender ["derived:<name>"]. *)

val advance_to : t -> Clock.time -> Event.t list
(** Timer-driven derivations (absence triggers). *)

val join_stats : t -> Incremental.join_stats
(** Aggregated join counters across all derivation-rule engines. *)
