(** Event-query answers (detections and partial matches).

    An instance records one way an event query was answered: the
    variable bindings it extracted, the time interval it covers, and the
    ids of the atomic events it is built from.  Composite instances are
    {!combine}d from constituent instances; the temporal order used by
    sequence queries is {!strictly_before}, which breaks timestamp ties
    with event ids (ids increase with creation order). *)

open Xchange_query

type t = {
  subst : Subst.t;
  t_start : Clock.time;
  t_end : Clock.time;
  ids : int list;  (** ids of constituent atomic events, sorted, duplicate-free *)
}

val atomic : Subst.t -> Clock.time -> int -> t

val timer : Subst.t -> t_start:Clock.time -> t_end:Clock.time -> ids:int list -> t
(** An instance not anchored on a new event (absence detections). *)

val combine : t list -> t option
(** Merge of the substitutions (None on conflict); interval = envelope
    of the constituents; ids = union. *)

val strictly_before : t -> t -> bool
(** [a] ends before [b] starts; ties on time are broken by comparing
    [a]'s largest id with [b]'s smallest. *)

val span : t -> Clock.span

val disjoint_ids : t -> t -> bool

val join_key : string list -> t -> Subst.t option
(** The instance's bindings restricted to the given join-key variables —
    [Some] only when every variable is bound ([None] for [[]] or partial
    bindings, which must fall into a join's wildcard partition; see
    {!Istore}). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val dedup : t list -> t list
val pp : t Fmt.t
