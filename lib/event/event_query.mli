(** The event query language (Thesis 5).

    Composite events "do not exist explicitly in the stream of incoming
    atomic events"; they are specified by event queries covering the
    paper's four complementary dimensions:

    - {b data extraction} — [Atomic] embeds a {!Xchange_query.Qterm}
      pattern over the event payload, delivering variable bindings;
    - {b event composition} — [And], [Or], [Seq] and the absence query
      [Absent] (negation needs a window to be detectable);
    - {b temporal conditions} — [Within] bounds the extent of a
      detection; [Seq] orders constituents ("A before B"); [Absent]
      carries its deadline;
    - {b event accumulation} — [Times] (n occurrences within a window,
      e.g. "3 server outages within 1 hour"), [Agg] (sliding aggregate
      over the last n values, e.g. "average of the last 5 stock
      prices"), and [Rises] (the paper's "average raises by 5%").

    Shared variables across constituents {e join}: [Times 3] of
    [outage{{server\[var S\]}}] only counts outages of the same server,
    and an [Absent] rebooking only cancels the flight-cancellation whose
    bindings it merges with. *)

open Xchange_query

type t =
  | Atomic of atomic
  | And of t list  (** all occur, in any order *)
  | Or of t list
  | Seq of t list  (** in strict temporal order *)
  | Within of t * Clock.span  (** detection extent at most the span *)
  | Absent of t * t * Clock.span
      (** [Absent (q1, q2, w)]: [q1] occurs and no joining [q2] starts
          within [w] after it; detected (by timer) at [q1]'s end + [w]. *)
  | Times of int * t * Clock.span
      (** n jointly-mergeable occurrences within the span; detected when
          the n-th arrives *)
  | Agg of agg_spec
  | Rises of rises_spec

and atomic = {
  label : string option;  (** event label; [None] matches any *)
  pattern : Qterm.t;  (** over the payload *)
  sender : string option;  (** required sender URI *)
}

and agg_spec = {
  over : t;
  var : string;  (** numeric variable of [over] that is aggregated *)
  window : int;  (** number of most recent instances aggregated *)
  op : Construct.agg;
  bind : string;  (** variable receiving the aggregate in detections *)
}
(** Instances of [over] are grouped by their bindings on the variables
    of [over] other than [var] (e.g. stock prices group by stock name);
    within a group the aggregate slides over the last [window] values. *)

and rises_spec = {
  r_over : t;
  r_var : string;
  r_window : int;
  r_ratio : float;  (** detect when avg(last w) >= ratio * avg(previous w) *)
  r_bind : string;  (** bound to the new average *)
}

(** {1 Constructors} *)

val on : ?sender:string -> ?label:string -> Qterm.t -> t
(** Atomic event query; when [label] is omitted, any event whose payload
    matches is selected. *)

val conj : t list -> t
val disj : t list -> t
val seq : t list -> t
val within : t -> Clock.span -> t
val absent : t -> then_absent:t -> for_:Clock.span -> t
val times : int -> t -> Clock.span -> t

(** {1 Analysis} *)

val vars : t -> string list
(** Variables a detection can bind (including [Agg]/[Rises] binders). *)

val atoms : t -> atomic list
(** All atomic sub-queries (for label indexing and dependency checks). *)

val atomic_digest : atomic -> string
(** Canonical structural digest of an atomic event query: label, sender
    and {!Xchange_query.Qterm.digest} of the payload pattern.  Two atoms
    with equal digests demand the same envelope and extract the same
    bindings from the same payloads, so their evaluation can be shared
    across rules (see {!Xchange_rules.Alpha}); equal atoms always yield
    equal digests. *)

val has_timers : t -> bool
(** Whether the query contains an absence operator — the only source of
    timer-driven detections.  Engines use this to skip clock advances on
    queries that cannot need them. *)

val has_accumulators : t -> bool
(** Whether the query contains an [Agg] or [Rises] operator.  Their
    group buffers are not reconstructible from detection ids, so the
    shared beta network ({!Xchange_rules.Beta}) refuses to share
    subtrees containing them (consumption could not be replayed as an
    id filter). *)

val canonicalize : t -> t * (string * string) list
(** Alpha-rename the query into canonical form: variables are numbered
    [v0], [v1], ... by first occurrence in a deterministic traversal, so
    queries equal up to variable names yield the {e same} canonical
    query.  Also returns the canonical -> original name mapping (a
    bijection; applying it to a canonical answer's bindings restores the
    original names).  Idempotent on already-canonical queries. *)

val composite_digest : ctx:Clock.span option -> t -> string
(** Cross-rule sharing key for a composite sub-query (the beta-network
    analogue of {!atomic_digest}): digest of the {!canonicalize}d form —
    operators, temporal parameters (windows, repetition counts,
    aggregate specs), child structure, and atomic envelopes/patterns —
    with the enclosing window context [ctx] folded in ([ctx] decides the
    internal pruning bounds a compiled node runs under, so occurrences
    below different enclosing windows must not share detection state).
    Alpha-equivalent sub-queries digest equal; consumers bucketing on
    the digest must still verify structural equality within a bucket
    (collision safety, exactly as with {!atomic_digest}). *)

val max_window : t -> Clock.span option
(** An upper bound on how long an atomic instance can remain relevant,
    when one exists: [None] means unbounded (no enclosing window), i.e.
    partial matches must be kept forever — the Thesis 4 "shadow Web"
    hazard that experiment E4 measures. *)

val validate : t -> (unit, string) result
(** [Times] needs n >= 1; [Agg]/[Rises] need window >= 1 and patterns
    that bind their variable; nested patterns must pass
    {!Qterm.validate}. *)

val pp : t Fmt.t
