open Xchange_query

(* ---- generic ring-buffer deque -------------------------------------- *)

module Dq = struct
  type 'a t = { mutable buf : 'a option array; mutable head : int; mutable len : int }

  let create () = { buf = Array.make 8 None; head = 0; len = 0 }
  let length d = d.len
  let is_empty d = d.len = 0

  let grow d =
    let cap = Array.length d.buf in
    let buf = Array.make (cap * 2) None in
    for i = 0 to d.len - 1 do
      buf.(i) <- d.buf.((d.head + i) mod cap)
    done;
    d.buf <- buf;
    d.head <- 0

  let push_back d x =
    if d.len = Array.length d.buf then grow d;
    d.buf.((d.head + d.len) mod Array.length d.buf) <- Some x;
    d.len <- d.len + 1

  let pop_front d =
    if d.len = 0 then None
    else begin
      let x = d.buf.(d.head) in
      d.buf.(d.head) <- None;
      d.head <- (d.head + 1) mod Array.length d.buf;
      d.len <- d.len - 1;
      x
    end

  let peek_front d = if d.len = 0 then None else d.buf.(d.head)

  let get d i =
    if i < 0 || i >= d.len then invalid_arg "Dq.get";
    match d.buf.((d.head + i) mod Array.length d.buf) with
    | Some x -> x
    | None -> assert false

  let iter f d =
    for i = 0 to d.len - 1 do
      f (get d i)
    done

  let fold f acc d =
    let acc = ref acc in
    iter (fun x -> acc := f !acc x) d;
    !acc

  let to_list d = List.rev (fold (fun acc x -> x :: acc) [] d)

  let clear d =
    Array.fill d.buf 0 (Array.length d.buf) None;
    d.head <- 0;
    d.len <- 0

  let filter_inplace p d =
    let kept = List.filter p (to_list d) in
    clear d;
    List.iter (push_back d) kept
end

(* ---- keyed instance store ------------------------------------------- *)

module KTbl = Hashtbl.Make (struct
  type t = Subst.t

  let equal = Subst.equal
  let hash = Subst.hash
end)

(* one partition: arrival-ordered deque + monotonicity flags enabling
   binary-searched temporal probes *)
type part = {
  dq : Instance.t Dq.t;
  mutable mono_start : bool;  (** t_start non-decreasing in arrival order *)
  mutable mono_end : bool;  (** t_end non-decreasing in arrival order *)
  mutable last_start : Clock.time;
  mutable last_end : Clock.time;
}

let part_create () =
  { dq = Dq.create (); mono_start = true; mono_end = true; last_start = min_int; last_end = min_int }

let part_add p (i : Instance.t) =
  if i.Instance.t_start < p.last_start then p.mono_start <- false;
  if i.Instance.t_end < p.last_end then p.mono_end <- false;
  p.last_start <- max p.last_start i.Instance.t_start;
  p.last_end <- max p.last_end i.Instance.t_end;
  Dq.push_back p.dq i

type stats = {
  mutable probes : int;
  mutable pairs_probed : int;
  mutable pairs_skipped : int;
  mutable pruned : int;
}

type t = {
  skey : string list;
  all : part;  (** every instance, arrival order *)
  tbl : part KTbl.t;  (** full-key partitions *)
  wild : part;  (** instances missing a key variable *)
  st : stats;
}

let create ~key =
  {
    skey = key;
    all = part_create ();
    tbl = KTbl.create 16;
    wild = part_create ();
    st = { probes = 0; pairs_probed = 0; pairs_skipped = 0; pruned = 0 };
  }

let key t = t.skey
let length t = Dq.length t.all.dq
let buckets t = KTbl.length t.tbl
let stats t = t.st
let to_list t = Dq.to_list t.all.dq

(* Some (restricted key) iff the substitution binds every key var *)
let key_of skey subst =
  if skey = [] then None
  else if List.for_all (fun v -> Option.is_some (Subst.find v subst)) skey then
    Some (Subst.restrict skey subst)
  else None

let part_of t (i : Instance.t) =
  match Instance.join_key t.skey i with
  | None -> t.wild
  | Some k -> (
      match KTbl.find_opt t.tbl k with
      | Some p -> p
      | None ->
          let p = part_create () in
          KTbl.add t.tbl k p;
          p)

let add t i =
  part_add t.all i;
  if t.skey <> [] then part_add (part_of t i) i

let add_list t is = List.iter (add t) is

(* The globally oldest instance is also the front of its partition:
   partitions preserve arrival order and only lose elements from the
   front (here) or by full rebuild (filter_inplace). *)
let prune t ~keep_from =
  let rec go () =
    match Dq.peek_front t.all.dq with
    | Some i when i.Instance.t_end < keep_from ->
        ignore (Dq.pop_front t.all.dq);
        if t.skey <> [] then begin
          let p = part_of t i in
          match Dq.pop_front p.dq with
          | Some j when j == i || Instance.equal j i -> ()
          | _ ->
              (* alignment lost (cannot happen by construction); restore
                 exactness rather than corrupt the partition *)
              Dq.filter_inplace (fun j -> not (Instance.equal j i)) p.dq
        end;
        t.st.pruned <- t.st.pruned + 1;
        go ()
    | _ -> ()
  in
  go ()

let rebuild_parts t =
  KTbl.reset t.tbl;
  Dq.clear t.wild.dq;
  t.wild.mono_start <- true;
  t.wild.mono_end <- true;
  t.wild.last_start <- min_int;
  t.wild.last_end <- min_int;
  if t.skey <> [] then Dq.iter (fun i -> part_add (part_of t i) i) t.all.dq

let filter_inplace p t =
  Dq.filter_inplace p t.all.dq;
  t.all.mono_start <- true;
  t.all.mono_end <- true;
  t.all.last_start <- min_int;
  t.all.last_end <- min_int;
  (* recompute monotonicity over the survivors *)
  let items = Dq.to_list t.all.dq in
  Dq.clear t.all.dq;
  List.iter (part_add t.all) items;
  rebuild_parts t

(* first index whose element satisfies [p] (p monotone: falses then trues) *)
let lower_bound dq p =
  let lo = ref 0 and hi = ref (Dq.length dq) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if p (Dq.get dq mid) then hi := mid else lo := mid + 1
  done;
  !lo

(* candidates of one partition under the temporal constraint; appends to
   [acc], returns (acc, enumerated) *)
let part_candidates p ?after ?before acc =
  match (after, before) with
  | Some a, _ when p.mono_start ->
      (* strictly_before a c requires c.t_start >= a.t_end; binary-search
         the suffix, then apply the exact (id-tie-breaking) predicate *)
      let start = lower_bound p.dq (fun c -> c.Instance.t_start >= a.Instance.t_end) in
      let acc = ref acc and n = ref 0 in
      for i = Dq.length p.dq - 1 downto start do
        let c = Dq.get p.dq i in
        incr n;
        if Instance.strictly_before a c then acc := c :: !acc
      done;
      (!acc, !n)
  | _, Some b when p.mono_end ->
      (* strictly_before c b requires c.t_end <= b.t_start; the matching
         prefix ends where t_end exceeds it *)
      let stop = lower_bound p.dq (fun c -> c.Instance.t_end > b.Instance.t_start) in
      let acc = ref acc in
      for i = stop - 1 downto 0 do
        let c = Dq.get p.dq i in
        if Instance.strictly_before c b then acc := c :: !acc
      done;
      (!acc, stop)
  | _ ->
      let filter c =
        (match after with Some a -> Instance.strictly_before a c | None -> true)
        && match before with Some b -> Instance.strictly_before c b | None -> true
      in
      let acc = ref acc in
      for i = Dq.length p.dq - 1 downto 0 do
        let c = Dq.get p.dq i in
        if filter c then acc := c :: !acc
      done;
      (!acc, Dq.length p.dq)

let probe ?after ?before t subst =
  t.st.probes <- t.st.probes + 1;
  let total = length t in
  let cands, enumerated =
    if t.skey = [] then part_candidates t.all ?after ?before []
    else
      match key_of t.skey subst with
      | None ->
          (* probing side misses a key var: anything could merge *)
          part_candidates t.all ?after ?before []
      | Some k ->
          let acc, n1 =
            match KTbl.find_opt t.tbl k with
            | Some p -> part_candidates p ?after ?before []
            | None -> ([], 0)
          in
          let acc, n2 = part_candidates t.wild ?after ?before acc in
          (acc, n1 + n2)
  in
  t.st.pairs_probed <- t.st.pairs_probed + List.length cands;
  t.st.pairs_skipped <- t.st.pairs_skipped + (total - enumerated);
  cands

let scan t =
  t.st.probes <- t.st.probes + 1;
  t.st.pairs_probed <- t.st.pairs_probed + length t;
  to_list t

let note_scan t =
  t.st.probes <- t.st.probes + 1;
  t.st.pairs_probed <- t.st.pairs_probed + length t
