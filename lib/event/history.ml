type retention = Unbounded | Keep of Clock.span

type t = {
  retention : retention;
  items : Event.t Istore.Dq.t;  (** oldest first; see {!add}'s ordering contract *)
  mutable now : Clock.time;
  mutable seen : int;
}

let create ?(retention = Unbounded) () =
  { retention; items = Istore.Dq.create (); now = Clock.origin; seen = 0 }

(* Events arrive in non-decreasing time order (the {!add} contract), so
   retention is amortized O(1): expired events are exactly a prefix of
   the deque and pop off the front. *)
let apply_retention h =
  match h.retention with
  | Unbounded -> ()
  | Keep span ->
      let cutoff = h.now - span in
      let rec drop () =
        match Istore.Dq.peek_front h.items with
        | Some e when Event.time e < cutoff ->
            ignore (Istore.Dq.pop_front h.items);
            drop ()
        | _ -> ()
      in
      drop ()

let add h e =
  Istore.Dq.push_back h.items e;
  h.seen <- h.seen + 1;
  if Event.time e > h.now then h.now <- Event.time e;
  apply_retention h

let advance h t =
  if t > h.now then begin
    h.now <- t;
    apply_retention h
  end

let now h = h.now
let events h = Istore.Dq.to_list h.items
let length h = Istore.Dq.length h.items
let total_seen h = h.seen
