(** Data-driven, incremental evaluation of event queries (Thesis 6).

    The query is compiled to an operator tree whose nodes store partial
    matches; each incoming event extends the stored state and work done
    in one evaluation step is never redone ("when event A is detected,
    we remember this for later when B is detected").

    {b Timers.}  Absence queries detect at a deadline, not at an event:
    {!advance_to} moves the engine clock forward and emits detections
    whose deadline has passed.  The caller contract for determinism: all
    events with time <= t have been fed before [advance_to t] is called,
    and events are fed in non-decreasing time order.

    {b Garbage collection} (Thesis 4): a node's partial matches are
    pruned as soon as every enclosing window makes them irrelevant.
    Query parts under no window — e.g. a bare [And] — are retained
    forever unless the engine is created with a [horizon]; E4 measures
    this "shadow Web" growth.

    {b Equivalence.}  With [consume = false] and [selection = Each], the
    cumulative detections equal {!Backward.answers} over the same
    stream (for streams respecting the timer contract above) — checked
    by property tests.

    {b Instance selection and consumption} (Thesis 5, Zimmer & Unland):
    [selection] picks which simultaneous detections are reported;
    [consume] uses up the constituent events of a reported detection so
    they cannot support further detections. *)

type selection = Each | First | Last

type t

type atom_matcher = Event.t -> Xchange_query.Subst.set
(** Evaluation of one atomic event query against one event: envelope
    gating (label, sender) plus payload matching.  The default matcher
    is compiled privately per node at build time; [?share] lets an
    owner of {e many} engines (the rule engine's alpha network,
    {!Xchange_rules.Alpha}) hand every structurally-identical atom the
    {e same} memoizing matcher, so an occurrence is evaluated once and
    its substitutions fanned out — per-rule state (the beta joins'
    {!Istore}s) stays inside each engine. *)

type subtree_matcher = Event.t -> Instance.t list
(** Evaluation of one {e composite} sub-query against one event: the
    detection instances the event completes, in the subscriber's own
    variable names.  [?share_sub] lets the shared beta network
    ({!Xchange_rules.Beta}) back a whole And/Seq/Times/... subtree with
    one join pipeline fanned out across rules; a subscribed matcher
    must behave exactly like the private compilation it replaces (same
    instances — the shared-beta property suite checks this end to
    end).  Matchers are only consulted on event feeds: the beta network
    declines timer-bearing subtrees, so clock advances never produce. *)

val create :
  ?consume:bool ->
  ?selection:selection ->
  ?horizon:Clock.span ->
  ?index:bool ->
  ?share:(Event_query.atomic -> atom_matcher) ->
  ?share_sub:(ctx:Clock.span option -> Event_query.t -> subtree_matcher option) ->
  Event_query.t ->
  (t, string) result
(** Compiles the query ({!Event_query.validate} is applied).
    [consume] defaults to [false], [selection] to [Each], [horizon] to
    none (unbounded retention for window-less query parts).

    [share], when given, supplies the matcher of every atomic sub-query
    instead of the locally-compiled default; it must return matchers
    that behave exactly like the default ones (same substitution sets —
    the shared-alpha property suite checks this end to end).

    [share_sub], when given, is consulted for every {e composite}
    subtree during compilation, outermost first, with [ctx] the span of
    the nearest enclosing window operator (it decides internal pruning
    bounds, so it is part of the sharing key).  [Some matcher] replaces
    the whole subtree with a thin projection over the shared pipeline —
    the rule keeps only its parent-facing store and consumption
    bookkeeping (consumed detections are filtered from the shared
    output by event id rather than purged from the shared stores);
    [None] falls through to the private compilation, recursing into
    children.

    [index] (default true) stores partial matches in hash-partitioned,
    time-ordered stores ({!Istore}): [And]/[Seq]/[Times] joins probe
    only the partition keyed by the shared variables of the partial
    match being extended (plus a wildcard partition for incomplete
    bindings), and [Seq] additionally binary-searches the
    temporally-compatible run of each partition.  [~index:false] keeps
    the pre-refactor nested-loop joins over the full stored pools —
    detections are identical (property-tested); disable only for
    ablation, as BENCH_event does. *)

val create_exn :
  ?consume:bool ->
  ?selection:selection ->
  ?horizon:Clock.span ->
  ?index:bool ->
  ?share:(Event_query.atomic -> atom_matcher) ->
  ?share_sub:(ctx:Clock.span option -> Event_query.t -> subtree_matcher option) ->
  Event_query.t ->
  t

val create_sub :
  ?horizon:Clock.span ->
  ?index:bool ->
  ?share:(Event_query.atomic -> atom_matcher) ->
  ctx:Clock.span option ->
  Event_query.t ->
  t
(** The pipeline backing one shared beta node: compiled under the
    enclosing-window context [ctx] of the occurrence it replaces (so
    internal pruning bounds match the private compilation), [consume]
    off, [selection = Each] — selection and consumption are per-rule
    policies and stay in the subscribing engines.  Never takes
    [share_sub] (a shared node backed by a pipeline that re-enters the
    beta network would recurse forever); atoms may still be shared via
    [share].  The caller guarantees the subtree comes from a validated
    query — no validation is re-run. *)

val feed : t -> Event.t -> Instance.t list
(** Process one event; returns the detections it (or a deadline at or
    before its time) completes. *)

val advance_to : t -> Clock.time -> Instance.t list
(** Move time forward; returns timer-driven detections (absence). *)

val query : t -> Event_query.t
val now : t -> Clock.time

val live_instances : t -> int
(** Number of stored partial matches across all operators (plus pending
    absences and accumulation buffer entries) — the memory proxy
    reported by E4. *)

val events_seen : t -> int
val detections_reported : t -> int

val next_deadline : t -> Clock.time option
(** Earliest pending absence deadline, if any — the time by which
    {!advance_to} must be called for a timer detection to fire on
    schedule.  Lets a discrete-event scheduler wake the engine exactly
    when a deadline is due instead of relying on periodic heartbeats. *)

(** {1 Join observability}

    Aggregated {!Istore} counters across the operator tree — the E5
    evidence that incremental evaluation "avoids re-scanning the
    history": [pairs_probed] counts candidates enumerated at join
    extension steps, [pairs_skipped] the stored instances a naive
    nested loop would have enumerated but a keyed/temporal probe never
    touched.  Under [~index:false] the joins enumerate full pools, so
    comparing [pairs_probed] across the two modes measures the join
    acceleration (see [bench/event_bench.ml]). *)

type join_stats = {
  probes : int;  (** probe/scan calls *)
  pairs_probed : int;
  pairs_skipped : int;
  instances_pruned : int;  (** dropped by window/horizon retention *)
  buckets : int;  (** populated hash partitions, summed over stores *)
  keyed_nodes : int;  (** stores with a non-empty partition key *)
}

val join_stats : t -> join_stats

val zero_join_stats : join_stats

val sum_join_stats : join_stats list -> join_stats
(** Pointwise sum — lets multi-engine owners (the rule engine, the
    event-derivation network) report one aggregate. *)

(** {1 Atomic-matcher accounting}

    Process-global count of {e real} payload-matcher executions at
    atomic nodes (envelope-refuted events don't count; neither do
    shared-alpha memo hits).  Deterministic for a fixed workload, like
    {!Plan}'s prune counters — BENCH_rules compares it across the
    shared and unshared modes, and the shared alpha network reports
    into it so the two paths stay measurable under one metric. *)

val envelope_ok : Event_query.atomic -> Event.t -> bool
(** The label/sender gate every atom matcher applies before payload
    matching — exported so shared-matcher implementations gate exactly
    like the default matcher. *)

val atomic_matcher_runs : unit -> int
val note_atomic_run : unit -> unit
(** For shared-matcher implementations ({!Xchange_rules.Alpha}): record
    one real evaluation performed outside the default matcher. *)

val reset_atomic_matcher_runs : unit -> unit
