(** Data-driven, incremental evaluation of event queries (Thesis 6).

    The query is compiled to an operator tree whose nodes store partial
    matches; each incoming event extends the stored state and work done
    in one evaluation step is never redone ("when event A is detected,
    we remember this for later when B is detected").

    {b Timers.}  Absence queries detect at a deadline, not at an event:
    {!advance_to} moves the engine clock forward and emits detections
    whose deadline has passed.  The caller contract for determinism: all
    events with time <= t have been fed before [advance_to t] is called,
    and events are fed in non-decreasing time order.

    {b Garbage collection} (Thesis 4): a node's partial matches are
    pruned as soon as every enclosing window makes them irrelevant.
    Query parts under no window — e.g. a bare [And] — are retained
    forever unless the engine is created with a [horizon]; E4 measures
    this "shadow Web" growth.

    {b Equivalence.}  With [consume = false] and [selection = Each], the
    cumulative detections equal {!Backward.answers} over the same
    stream (for streams respecting the timer contract above) — checked
    by property tests.

    {b Instance selection and consumption} (Thesis 5, Zimmer & Unland):
    [selection] picks which simultaneous detections are reported;
    [consume] uses up the constituent events of a reported detection so
    they cannot support further detections. *)

type selection = Each | First | Last

type t

val create :
  ?consume:bool ->
  ?selection:selection ->
  ?horizon:Clock.span ->
  ?index:bool ->
  Event_query.t ->
  (t, string) result
(** Compiles the query ({!Event_query.validate} is applied).
    [consume] defaults to [false], [selection] to [Each], [horizon] to
    none (unbounded retention for window-less query parts).

    [index] (default true) stores partial matches in hash-partitioned,
    time-ordered stores ({!Istore}): [And]/[Seq]/[Times] joins probe
    only the partition keyed by the shared variables of the partial
    match being extended (plus a wildcard partition for incomplete
    bindings), and [Seq] additionally binary-searches the
    temporally-compatible run of each partition.  [~index:false] keeps
    the pre-refactor nested-loop joins over the full stored pools —
    detections are identical (property-tested); disable only for
    ablation, as BENCH_event does. *)

val create_exn :
  ?consume:bool ->
  ?selection:selection ->
  ?horizon:Clock.span ->
  ?index:bool ->
  Event_query.t ->
  t

val feed : t -> Event.t -> Instance.t list
(** Process one event; returns the detections it (or a deadline at or
    before its time) completes. *)

val advance_to : t -> Clock.time -> Instance.t list
(** Move time forward; returns timer-driven detections (absence). *)

val query : t -> Event_query.t
val now : t -> Clock.time

val live_instances : t -> int
(** Number of stored partial matches across all operators (plus pending
    absences and accumulation buffer entries) — the memory proxy
    reported by E4. *)

val events_seen : t -> int
val detections_reported : t -> int

val next_deadline : t -> Clock.time option
(** Earliest pending absence deadline, if any — the time by which
    {!advance_to} must be called for a timer detection to fire on
    schedule.  Lets a discrete-event scheduler wake the engine exactly
    when a deadline is due instead of relying on periodic heartbeats. *)

(** {1 Join observability}

    Aggregated {!Istore} counters across the operator tree — the E5
    evidence that incremental evaluation "avoids re-scanning the
    history": [pairs_probed] counts candidates enumerated at join
    extension steps, [pairs_skipped] the stored instances a naive
    nested loop would have enumerated but a keyed/temporal probe never
    touched.  Under [~index:false] the joins enumerate full pools, so
    comparing [pairs_probed] across the two modes measures the join
    acceleration (see [bench/event_bench.ml]). *)

type join_stats = {
  probes : int;  (** probe/scan calls *)
  pairs_probed : int;
  pairs_skipped : int;
  instances_pruned : int;  (** dropped by window/horizon retention *)
  buckets : int;  (** populated hash partitions, summed over stores *)
  keyed_nodes : int;  (** stores with a non-empty partition key *)
}

val join_stats : t -> join_stats

val zero_join_stats : join_stats

val sum_join_stats : join_stats list -> join_stats
(** Pointwise sum — lets multi-engine owners (the rule engine, the
    event-derivation network) report one aggregate. *)
