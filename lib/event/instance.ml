open Xchange_query

type t = { subst : Subst.t; t_start : Clock.time; t_end : Clock.time; ids : int list }

let atomic subst time id = { subst; t_start = time; t_end = time; ids = [ id ] }
let timer subst ~t_start ~t_end ~ids = { subst; t_start; t_end; ids }

let merge_ids a b = List.sort_uniq Int.compare (a @ b)

let combine instances =
  match instances with
  | [] -> None
  | first :: rest ->
      let rec go acc = function
        | [] -> Some acc
        | i :: rest -> (
            match Subst.merge acc.subst i.subst with
            | None -> None
            | Some subst ->
                go
                  {
                    subst;
                    t_start = min acc.t_start i.t_start;
                    t_end = max acc.t_end i.t_end;
                    ids = merge_ids acc.ids i.ids;
                  }
                  rest)
      in
      go first rest

let max_id i = List.fold_left max 0 i.ids
let min_id i = List.fold_left min max_int i.ids

let strictly_before a b =
  a.t_end < b.t_start || (a.t_end = b.t_start && max_id a < min_id b)

let span i = Clock.diff i.t_end i.t_start

let disjoint_ids a b = not (List.exists (fun id -> List.mem id b.ids) a.ids)

let join_key vars i =
  if vars = [] then None
  else if List.for_all (fun v -> Option.is_some (Subst.find v i.subst)) vars then
    Some (Subst.restrict vars i.subst)
  else None

let compare a b =
  let c = Int.compare a.t_end b.t_end in
  if c <> 0 then c
  else
    let c = Int.compare a.t_start b.t_start in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.ids b.ids in
      if c <> 0 then c else Subst.compare a.subst b.subst

let equal a b = compare a b = 0
let dedup l = List.sort_uniq compare l

let pp ppf i =
  Fmt.pf ppf "<[%a..%a] ids=%a %a>" Clock.pp_time i.t_start Clock.pp_time i.t_end
    Fmt.(list ~sep:comma int)
    i.ids Subst.pp i.subst
