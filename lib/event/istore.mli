(** Time-ordered instance stores for the incremental event engine.

    A store replaces the old [Instance.t list] node state of
    {!Incremental}: instances are appended in arrival order at the back
    (amortized O(1)), window/horizon retention pops expired instances
    off the front instead of re-filtering the whole list, and — when the
    store is created with a non-empty [key] — instances are additionally
    hash-partitioned by their bindings on the key variables, so a join
    can {!probe} only the partition a fresh instance can merge with.

    {b Keying.}  The key of an instance is [Subst.restrict key] of its
    substitution, but only when the instance binds {e every} key
    variable; instances with any key variable unbound (optional
    sub-patterns, [Or] alternatives) go to a wildcard partition that
    every probe also visits, so partial bindings can never lose join
    partners.  Probing with a substitution that itself misses a key
    variable degrades to the full scan — correct, just unaccelerated.

    {b Order.}  Each partition remembers whether its instances arrived
    with non-decreasing [t_start] (resp. [t_end]) — true for atomic
    streams, the hot case.  When it holds, the [?after]/[?before]
    temporal probes binary-search the deque instead of scanning it, so
    sequence joins stop enumerating out-of-order pairs.

    {b Retention is conservative.}  {!prune} stops at the first
    non-expired front instance; slightly out-of-order arrivals (timer
    instances end before they arrive) can therefore outlive an exact
    filter by one step.  That is safe: the engine's windows re-filter
    joined results, and GC is a memory optimisation, not a semantics
    carrier (see HACKING.md "Event-engine internals"). *)

open Xchange_query

(** Generic growable ring-buffer deque: O(1) amortized [push_back],
    O(1) [pop_front], O(1) random access.  Also used by {!History}. *)
module Dq : sig
  type 'a t

  val create : unit -> 'a t
  val length : 'a t -> int
  val is_empty : 'a t -> bool
  val push_back : 'a t -> 'a -> unit
  val pop_front : 'a t -> 'a option
  val peek_front : 'a t -> 'a option
  val get : 'a t -> int -> 'a
  (** Index 0 is the oldest element; raises [Invalid_argument] out of
      bounds. *)

  val iter : ('a -> unit) -> 'a t -> unit
  val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
  val to_list : 'a t -> 'a list
  (** Oldest first. *)

  val filter_inplace : ('a -> bool) -> 'a t -> unit
  val clear : 'a t -> unit
end

type stats = {
  mutable probes : int;  (** keyed/temporal probe calls *)
  mutable pairs_probed : int;  (** candidate instances handed to a join *)
  mutable pairs_skipped : int;
      (** stored instances a naive nested loop would have enumerated but
          a probe never touched *)
  mutable pruned : int;  (** instances dropped by {!prune} *)
}

type t

val create : key:string list -> t
(** [key] is the shared-variable join key; [[]] disables partitioning
    (every probe is a counted full scan). *)

val key : t -> string list
val length : t -> int
val buckets : t -> int
(** Number of distinct key partitions currently populated (0 when the
    store is unkeyed). *)

val add : t -> Instance.t -> unit
val add_list : t -> Instance.t list -> unit

val to_list : t -> Instance.t list
(** Arrival order, oldest first — the exact pool the pre-refactor
    engine stored; the naive ([~index:false]) join path consumes this. *)

val prune : t -> keep_from:Clock.time -> unit
(** Pop instances with [t_end < keep_from] off the front, stopping at
    the first survivor (see retention caveat above). *)

val filter_inplace : (Instance.t -> bool) -> t -> unit
(** Exact rebuild (used by consumption's [purge_ids]); O(n). *)

val probe : ?after:Instance.t -> ?before:Instance.t -> t -> Subst.t -> Instance.t list
(** Candidates that can still merge with a partial match whose
    substitution is the argument: the matching key partition plus the
    wildcard partition (or everything, when the store is unkeyed or the
    substitution misses key variables).  [?after] keeps only candidates
    [c] with [Instance.strictly_before after c]; [?before] only those
    with [Instance.strictly_before c before] — each binary-searched when
    the partition's arrival order allows.  Updates {!stats}. *)

val scan : t -> Instance.t list
(** [to_list], but counted in {!stats} as a full-pool enumeration — the
    naive join calls this so naive vs indexed pair counts compare. *)

val note_scan : t -> unit
(** Account a full-pool enumeration without materialising the list
    (the naive path reuses one shared pool across pivots). *)

val stats : t -> stats
