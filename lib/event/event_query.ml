open Xchange_query

type t =
  | Atomic of atomic
  | And of t list
  | Or of t list
  | Seq of t list
  | Within of t * Clock.span
  | Absent of t * t * Clock.span
  | Times of int * t * Clock.span
  | Agg of agg_spec
  | Rises of rises_spec

and atomic = { label : string option; pattern : Qterm.t; sender : string option }

and agg_spec = {
  over : t;
  var : string;
  window : int;
  op : Construct.agg;
  bind : string;
}

and rises_spec = {
  r_over : t;
  r_var : string;
  r_window : int;
  r_ratio : float;
  r_bind : string;
}

let on ?sender ?label pattern = Atomic { label; pattern; sender }
let conj qs = And qs
let disj qs = Or qs
let seq qs = Seq qs
let within q span = Within (q, span)
let absent q ~then_absent ~for_ = Absent (q, then_absent, for_)
let times n q span = Times (n, q, span)

let rec vars = function
  | Atomic a -> Qterm.vars a.pattern
  | And qs | Or qs | Seq qs -> List.concat_map vars qs
  | Within (q, _) -> vars q
  | Absent (q, _, _) -> vars q (* the absent part never exports bindings *)
  | Times (_, q, _) -> vars q
  | Agg spec -> spec.bind :: vars spec.over
  | Rises spec -> spec.r_bind :: vars spec.r_over

let vars q = List.sort_uniq String.compare (vars q)

let rec atoms = function
  | Atomic a -> [ a ]
  | And qs | Or qs | Seq qs -> List.concat_map atoms qs
  | Within (q, _) | Times (_, q, _) -> atoms q
  | Absent (q1, q2, _) -> atoms q1 @ atoms q2
  | Agg spec -> atoms spec.over
  | Rises spec -> atoms spec.r_over

(* An atomic query's identity for cross-rule sharing: the envelope
   constraints plus the payload pattern's canonical digest.  The "\x00"
   separators keep (label="ab", sender="") distinct from (label="a",
   sender="b") and option-ness explicit. *)
let atomic_digest_uncached (a : atomic) =
  let opt = function None -> "-" | Some s -> "+" ^ s in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" [ opt a.label; opt a.sender; Qterm.digest a.pattern ]))

(* memoized like Qterm.digest: registration and resync paths hash the
   same few atoms over and over; domain-local so sharded schedulers
   never contend *)
let atomic_digest_caches : (atomic, string) Lru.t Xchange_core.Domain_local.t =
  Xchange_core.Domain_local.create (fun () -> Lru.create ~cap:512)

let atomic_digest (a : atomic) =
  let cache = Xchange_core.Domain_local.get atomic_digest_caches in
  match Lru.find cache a with
  | Some d -> d
  | None ->
      let d = atomic_digest_uncached a in
      Lru.add cache a d;
      d

let rec has_timers = function
  | Atomic _ -> false
  | And qs | Or qs | Seq qs -> List.exists has_timers qs
  | Within (q, _) | Times (_, q, _) -> has_timers q
  | Absent _ -> true
  | Agg spec -> has_timers spec.over
  | Rises spec -> has_timers spec.r_over

let rec has_accumulators = function
  | Atomic _ -> false
  | And qs | Or qs | Seq qs -> List.exists has_accumulators qs
  | Within (q, _) | Times (_, q, _) -> has_accumulators q
  | Absent (q1, q2, _) -> has_accumulators q1 || has_accumulators q2
  | Agg _ | Rises _ -> true

(* Canonical variable renaming: variables are numbered by first
   occurrence in a deterministic traversal (operator structure, then
   each atomic pattern's syntactic order), so queries equal up to
   variable names share one canonical form — the unit of cross-rule
   join-state sharing (the beta network).  Returns the renamed query and
   the canonical -> original name mapping; the mapping is a bijection,
   so a subscriber can rename shared answers back without loss. *)
let canonicalize q =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  let canon v =
    match Hashtbl.find_opt tbl v with
    | Some c -> c
    | None ->
        let c = Printf.sprintf "v%d" (Hashtbl.length tbl) in
        Hashtbl.add tbl v c;
        order := (c, v) :: !order;
        c
  in
  let rec go = function
    | Atomic a -> Atomic { a with pattern = Qterm.map_vars canon a.pattern }
    | And qs -> And (go_list qs)
    | Or qs -> Or (go_list qs)
    | Seq qs -> Seq (go_list qs)
    | Within (q, s) -> Within (go q, s)
    | Absent (q1, q2, s) ->
        let q1 = go q1 in
        let q2 = go q2 in
        Absent (q1, q2, s)
    | Times (n, q, s) -> Times (n, go q, s)
    | Agg spec ->
        let over = go spec.over in
        Agg { spec with over; var = canon spec.var; bind = canon spec.bind }
    | Rises spec ->
        let r_over = go spec.r_over in
        Rises { spec with r_over; r_var = canon spec.r_var; r_bind = canon spec.r_bind }
  and go_list qs = List.rev (List.rev_map go qs) (* left-to-right, explicitly *)
  in
  let q' = go q in
  (q', List.rev !order)

(* A composite sub-query's identity for cross-rule sharing (the beta
   network): digest of the canonicalized (alpha-renamed) form —
   operators, their temporal parameters, child structure, and the atomic
   envelopes/patterns — with the enclosing window context [ctx] folded
   in.  [ctx] decides the internal pruning bounds a node is compiled
   under, so occurrences below different enclosing windows must not
   share detection state.  Like {!atomic_digest}, consumers bucketing on
   it must still verify structural equality within a bucket. *)
let composite_digest ~ctx q =
  let q, _ = canonicalize q in
  let buf = Buffer.create 256 in
  let c ch = Buffer.add_char buf ch in
  let s str =
    Buffer.add_string buf (string_of_int (String.length str));
    c ':';
    Buffer.add_string buf str
  in
  let i n =
    Buffer.add_string buf (string_of_int n);
    c ';'
  in
  let rec go = function
    | Atomic a ->
        c 'a';
        s (atomic_digest a)
    | And qs ->
        c '&';
        i (List.length qs);
        List.iter go qs
    | Or qs ->
        c '|';
        i (List.length qs);
        List.iter go qs
    | Seq qs ->
        c '>';
        i (List.length qs);
        List.iter go qs
    | Within (q, sp) ->
        c 'w';
        i sp;
        go q
    | Absent (q1, q2, sp) ->
        c '!';
        i sp;
        go q1;
        go q2
    | Times (n, q, sp) ->
        c 'x';
        i n;
        i sp;
        go q
    | Agg spec ->
        c 'g';
        s spec.var;
        s spec.bind;
        i spec.window;
        c
          (match spec.op with
          | Construct.Count -> 'c'
          | Construct.Sum -> 's'
          | Construct.Avg -> 'a'
          | Construct.Min -> 'm'
          | Construct.Max -> 'M');
        go spec.over
    | Rises spec ->
        c 'r';
        s spec.r_var;
        s spec.r_bind;
        i spec.r_window;
        s (Printf.sprintf "%h" spec.r_ratio);
        go spec.r_over
  in
  go q;
  (match ctx with
  | None -> c '-'
  | Some sp ->
      c '+';
      i sp);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* An atomic instance below an unbounded composition must be kept
   forever; below Within/Times/Absent it can be discarded once older
   than the window. *)
let rec max_window = function
  | Atomic _ -> Some 0
  | And qs | Or qs | Seq qs ->
      let ws = List.map max_window qs in
      if List.exists Option.is_none ws then None
      else if qs = [] then Some 0
      else None (* composition without a window bound is unbounded *)
  | Within (_, span) ->
      (* constituents are only relevant while inside the window *)
      Some span
  | Absent (q1, q2, span) -> (
      match (max_window q1, max_window q2) with
      | Some w1, Some w2 -> Some (max span (max w1 w2) + span)
      | _, _ -> None)
  | Times (_, q, span) -> (
      match max_window q with Some w -> Some (span + w) | None -> None)
  | Agg spec -> max_window spec.over
  | Rises spec -> max_window spec.r_over

let ( let* ) = Result.bind

let rec validate = function
  | Atomic a -> Qterm.validate a.pattern
  | And qs | Or qs | Seq qs ->
      if qs = [] then Error "empty composition"
      else
        List.fold_left
          (fun acc q ->
            let* () = acc in
            validate q)
          (Ok ()) qs
  | Within (q, span) -> if span < 0 then Error "negative window" else validate q
  | Absent (q1, q2, span) ->
      if span <= 0 then Error "absence needs a positive window"
      else
        let* () = validate q1 in
        validate q2
  | Times (n, q, span) ->
      if n < 1 then Error "times: n must be >= 1"
      else if span <= 0 then Error "times: window must be positive"
      else validate q
  | Agg spec ->
      if spec.window < 1 then Error "agg: window must be >= 1"
      else if not (List.mem spec.var (vars spec.over)) then
        Error (Fmt.str "agg: variable %s is not bound by the source query" spec.var)
      else if List.mem spec.bind (vars spec.over) then
        Error (Fmt.str "agg: binder %s collides with a source variable" spec.bind)
      else validate spec.over
  | Rises spec ->
      if spec.r_window < 1 then Error "rises: window must be >= 1"
      else if not (List.mem spec.r_var (vars spec.r_over)) then
        Error (Fmt.str "rises: variable %s is not bound by the source query" spec.r_var)
      else if List.mem spec.r_bind (vars spec.r_over) then
        Error (Fmt.str "rises: binder %s collides with a source variable" spec.r_bind)
      else validate spec.r_over

let pp_agg_op ppf op =
  Fmt.string ppf
    (match op with
    | Construct.Count -> "count"
    | Construct.Sum -> "sum"
    | Construct.Avg -> "avg"
    | Construct.Min -> "min"
    | Construct.Max -> "max")

let rec pp ppf = function
  | Atomic a ->
      let pp_label ppf = function Some l -> Fmt.pf ppf "%s:" l | None -> () in
      let pp_sender ppf = function Some s -> Fmt.pf ppf " from %S" s | None -> () in
      Fmt.pf ppf "%a%a%a" pp_label a.label Qterm.pp a.pattern pp_sender a.sender
  | And qs -> Fmt.pf ppf "and(@[%a@])" Fmt.(list ~sep:comma pp) qs
  | Or qs -> Fmt.pf ppf "or(@[%a@])" Fmt.(list ~sep:comma pp) qs
  | Seq qs -> Fmt.pf ppf "seq(@[%a@])" Fmt.(list ~sep:comma pp) qs
  | Within (q, s) -> Fmt.pf ppf "(%a within %a)" pp q Clock.pp_span s
  | Absent (q1, q2, s) ->
      Fmt.pf ppf "(%a andthen absent %a for %a)" pp q1 pp q2 Clock.pp_span s
  | Times (n, q, s) -> Fmt.pf ppf "(%d times %a within %a)" n pp q Clock.pp_span s
  | Agg spec ->
      Fmt.pf ppf "(%a($%s) over last %d of %a as $%s)" pp_agg_op spec.op spec.var spec.window
        pp spec.over spec.bind
  | Rises spec ->
      Fmt.pf ppf "(avg($%s) over last %d of %a rises by %g as $%s)" spec.r_var spec.r_window
        pp spec.r_over (spec.r_ratio -. 1.) spec.r_bind
