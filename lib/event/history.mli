(** Event history with retention control (Thesis 4).

    The query-driven baseline ({!Backward}) must keep the whole event
    history; Thesis 4 demands that volatile data "stays volatile, i.e.,
    is disposed of after finite time".  A history is created with a
    retention policy: [Unbounded] (the "shadow Web" hazard) or
    [Keep span] (events older than the span are dropped as time
    advances).  Experiment E4 contrasts the two. *)

type retention = Unbounded | Keep of Clock.span

type t

val create : ?retention:retention -> unit -> t
(** [retention] defaults to [Unbounded]. *)

val add : t -> Event.t -> unit
(** Events must be added in non-decreasing {!Event.time} order; the
    history also advances its notion of "now" to the event's time.
    Amortized O(1): the ordering contract makes expired events a prefix
    of the (oldest-first) deque, so retention pops from the front
    instead of re-filtering the whole history. *)

val advance : t -> Clock.time -> unit
(** Move time forward, applying retention. *)

val now : t -> Clock.time
val events : t -> Event.t list
(** Retained events, oldest first. *)

val length : t -> int
val total_seen : t -> int
(** All events ever added, including dropped ones. *)
