(* Business-travel workflow (Section 2 of the paper: "Web-based business
   management systems, e.g., for business travel applications, planning,
   and reimbursement in large companies, that rely upon complex
   workflows of actions and messages").

   Four Web sites choreograph a trip without any central coordinator
   (Thesis 2: local rules, global behaviour through events):

   - hr.example       receives travel requests, checks the department
                      budget on the REMOTE finance site (Thesis 2), and
                      approves or rejects.
   - booking.example  books a flight with alternatives (Thesis 8: try
                      the preferred carrier, fall back to another) and a
                      hotel, then confirms.
   - finance.example  hosts the budget document and reimburses once BOTH
                      the trip report and the receipts have arrived
                      (AND composite, Thesis 5); the reimbursement is
                      denied if receipts fail to arrive within 14 days
                      of the report (absence).
   - employee.example just logs what happens to them.

   Run with: dune exec examples/travel_workflow.exe
*)

open Xchange

let hr_program =
  {|
ruleset hr {
  rule request:
    on travel-request{{who[var Who], dest[var Dest], cost[var Cost]}}
    if in uri("finance.example/budget") budget{{available[var Avail]}}
    do if $Cost <= $Avail
       then { log "approved: %s to %s (%s EUR)", $Who, $Dest, $Cost;
              raise to "booking.example" book book[who[$Who], dest[$Dest]];
              raise to "finance.example" reserve reserve[amount[$Cost]] }
       else { log "rejected: %s to %s (budget too low)", $Who, $Dest;
              raise to "employee.example" rejected rejected[dest[$Dest]] }
}
|}

let booking_program =
  {|
ruleset booking {
  procedure confirm(Who, Dest, How) {
    log "booked %s to %s via %s", $Who, $Dest, $How;
    raise to "employee.example" itinerary itinerary[who[$Who], dest[$Dest], via[$How]]
  }

  rule book:
    on book{{who[var Who], dest[var Dest]}}
    do alt {
         # preferred carrier only flies to HQ
         { if in doc("/routes") routes{{route{{carrier["prefair"], dest[var Dest]}}}}
           then call confirm($Who, $Dest, "prefair")
           else fail "prefair does not fly there" }
       | call confirm($Who, $Dest, "anyjet")
       }
}
|}

let finance_program =
  {|
ruleset finance {
  rule reserve:
    on reserve{{amount[var A]}}
    do log "reserved %s EUR", $A

  # reimbursement needs BOTH the report and the receipts (any order)
  rule reimburse(consume):
    on and{trip-report{{who[var Who]}}, receipts{{who[var Who], total[var T]}}} within 30 h
    do { log "reimbursing %s: %s EUR", $Who, $T;
         raise to "employee.example" paid paid[amount[$T]] }

  # report with no receipts within 14 hours: warn
  rule missing-receipts:
    on absent{trip-report{{who[var Who]}}, receipts{{who[var Who]}}} within 14 h
    do raise to "employee.example" reminder reminder[who[$Who]]
}
|}

let employee_program =
  {|
ruleset employee {
  rule itinerary: on itinerary{{dest[var D], via[var V]}} do log "got itinerary to %s via %s", $D, $V
  rule rejected:  on rejected{{dest[var D]}}              do log "trip to %s rejected", $D
  rule paid:      on paid{{amount[var A]}}                do log "reimbursed %s EUR", $A
  rule reminded:  on reminder{{}}                         do log "reminder: submit receipts!"
}
|}

let () =
  let mk host src =
    match node_of_program ~host src with Ok n -> n | Error e -> failwith (host ^ ": " ^ e)
  in
  let hr = mk "hr.example" hr_program in
  let booking = mk "booking.example" booking_program in
  let finance = mk "finance.example" finance_program in
  let employee = mk "employee.example" employee_program in

  Store.add_doc (Node.store finance) "/budget"
    (Xml.parse_exn "<budget><available>1000</available></budget>");
  Store.add_doc (Node.store booking) "/routes"
    (Xml.parse_exn
       {|<routes xch:unordered="true"><route><carrier>prefair</carrier><dest>HQ</dest></route></routes>|});

  let net = Network.create () in
  List.iter (Network.add_node_exn net) [ hr; booking; finance; employee ];
  Network.enable_heartbeat net ~period:(Clock.hours 1);

  let request who dest cost =
    Term.elem "travel-request"
      [
        Term.elem "who" [ Term.text who ];
        Term.elem "dest" [ Term.text dest ];
        Term.elem "cost" [ Term.num cost ];
      ]
  in
  (* ann goes to HQ (preferred carrier); bob to a conference (fallback
     carrier); carl's trip busts the budget *)
  Network.inject net ~to_:"hr.example" ~label:"travel-request" (request "ann" "HQ" 400.);
  Network.inject net ~to_:"hr.example" ~label:"travel-request" (request "bob" "EDBT" 600.);
  Network.inject net ~to_:"hr.example" ~label:"travel-request" (request "carl" "Hawaii" 5000.);
  Network.run net ~until:(Clock.hours 1);

  (* after the trips: ann files report + receipts; bob only the report *)
  Network.inject net ~to_:"finance.example" ~label:"trip-report"
    (Term.elem "trip-report" [ Term.elem "who" [ Term.text "ann" ] ]);
  Network.inject net ~to_:"finance.example" ~label:"receipts"
    (Term.elem "receipts" [ Term.elem "who" [ Term.text "ann" ]; Term.elem "total" [ Term.num 385. ] ]);
  Network.inject net ~to_:"finance.example" ~label:"trip-report"
    (Term.elem "trip-report" [ Term.elem "who" [ Term.text "bob" ] ]);
  Network.run net ~until:(Clock.hours 40);

  List.iter
    (fun n ->
      Fmt.pr "--- %s ---@." (Node.host n);
      List.iter (Fmt.pr "  %s@.") (Node.logs n))
    [ hr; booking; finance; employee ];
  Fmt.pr "--- traffic: %d messages, %d remote budget lookups ---@."
    (Network.transport_stats net).Transport.messages (Network.remote_fetches net)
