(* The paper's context-dependent service (Section 2): "a time- and
   location-dependent car park directory that adapts the information it
   delivers and reacts to changes."

   - Each car park publishes its free-spot count to the directory
     (push, Thesis 3) whenever a car enters or leaves.
   - The directory keeps a live document of spot counts per district
     and republishes district summaries through its pub/sub register,
     so subscribed navigation devices learn about changes immediately.
   - A congestion rule uses accumulation (Thesis 5): if the average of
     the last 4 reported counts for a car park drops below 5, the
     directory marks it "filling up".
   - Drivers (navigation devices) query the directory document remotely
     (Thesis 2) before deciding.

   Run with: dune exec examples/carpark.exe
*)

open Xchange

let directory_program =
  {|
ruleset directory {
  # keep the live register: replace the car park's entry on every report
  rule spots:
    on spots{{park[var P], district[var D], free[var N]}}
    do { delete from "/parks" matching entry{{park[var P]}};
         insert into "/parks" entry[park[$P], district[$D], free[$N]];
         raise to "directory.example" publish
           publish[topic[$D], body[update[park[$P], free[$N]]]] }

  # accumulation: average of the last 4 reports for one park below 10
  rule filling-up:
    on avg($N) last 4 {spots{{park[var P], free[var N]}}} as A
    if $A < 10
    do log "car park %s is filling up (avg %s free)", $P, $A
}
|}

let () =
  let directory =
    match node_of_program ~host:"directory.example" directory_program with
    | Ok n -> n
    | Error e -> failwith e
  in
  (* the directory also runs the standard pub/sub rules *)
  let with_pubsub =
    Ruleset.make
      ~children:[ Engine.ruleset (Node.engine directory); Pubsub.publisher_ruleset () ]
      "directory-root"
  in
  let directory = node_exn ~host:"directory.example" with_pubsub in
  Store.add_doc (Node.store directory) "/parks" (Term.elem ~ord:Term.Unordered "parks" []);
  Store.add_doc (Node.store directory) Pubsub.subscribers_doc (Pubsub.empty_register ());

  let nav_rules =
    Result.get_ok
      (Parser.parse_program
         {|ruleset nav {
             rule notify:
               on notify{{topic[var D], body[update[park[var P], free[var N]]]}}
               do log "district %s: %s now has %s free spots", $D, $P, $N
           }|})
  in
  let nav = node_exn ~host:"nav.example" nav_rules in

  let net = Network.create () in
  Network.add_node_exn net directory;
  Network.add_node_exn net nav;

  (* the navigation device subscribes to the city-centre district *)
  Network.inject net ~to_:"directory.example" ~label:"subscribe"
    (Pubsub.subscribe ~topic:"centre" ~host:"nav.example");

  (* car parks report their counts as cars come and go *)
  let report t park district free =
    if Network.clock net < t then Network.run net ~until:t;
    Network.inject net ~sender:(park ^ ".example") ~to_:"directory.example" ~label:"spots"
      (Term.elem "spots"
         [
           Term.elem "park" [ Term.text park ];
           Term.elem "district" [ Term.text district ];
           Term.elem "free" [ Term.num free ];
         ])
  in
  report (Clock.minutes 0) "p-opera" "centre" 40.;
  report (Clock.minutes 2) "p-station" "north" 100.;
  report (Clock.minutes 5) "p-opera" "centre" 22.;
  report (Clock.minutes 9) "p-opera" "centre" 9.;
  report (Clock.minutes 12) "p-opera" "centre" 4.;
  report (Clock.minutes 15) "p-opera" "centre" 2.;
  ignore (Network.run_until_quiet net ());

  Fmt.pr "--- directory log ---@.";
  List.iter (Fmt.pr "  %s@.") (Node.logs directory);
  Fmt.pr "--- navigation device (subscribed to 'centre' only) ---@.";
  List.iter (Fmt.pr "  %s@.") (Node.logs nav);
  Fmt.pr "--- live register (what a driver's remote query returns) ---@.%s@."
    (Xml.to_string (Option.get (Store.doc (Node.store directory) "/parks")))
