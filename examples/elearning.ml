(* A Semantic Web scenario (Section 2 of the paper): "an e-learning
   system might refer to inference rules expressed in terms of RDF
   triples, RDF Schema, and OWL", selecting and delivering teaching
   materials depending on a student's test performance.

   The tutor node keeps its course catalogue as an RDF graph with an
   RDFS class hierarchy.  Reactive rules:
   - a failed test asserts a "needs" triple for the student (RDF update
     actions, Thesis 8);
   - a passed test retracts it and advances the student;
   - material recommendations query the RDFS *closure*: a student who
     needs "algebra" is offered any material whose subject is a
     SUBCLASS of algebra, through rdf conditions (Thesis 7 over RDF).

   Run with: dune exec examples/elearning.exe
*)

open Xchange

let tutor_program =
  {|
ruleset tutor {
  rule failed-test:
    on test-result{{student[var S], topic[var T], score[var P]}}
    if $P < 50
    do { log "%s failed %s (%s points)", $S, $T, $P;
         assert into "/profile" (iri($S), "needs", iri($T));
         raise to "tutor.example" recommend recommend[student[$S], topic[$T]] }

  rule passed-test:
    on test-result{{student[var S], topic[var T], score[var P]}}
    if $P >= 50
    do { log "%s passed %s", $S, $T;
         retract from "/profile" (iri($S), "needs", iri($T)) }

  # recommendation: any material on a subtopic of the needed topic,
  # found in the RDFS closure of the catalogue (the event carries the
  # topic as text; iri($T) lifts it to an IRI node for the comparison)
  rule recommend:
    on recommend{{student[var S], topic[var T]}}
    if and(rdf doc("/catalogue") {($M iri("subject") $Sub) ($Sub iri("rdfs:subClassOf") $TI)},
           $TI = iri($T))
    do log "  -> offer %s to %s", $M, $S
}
|}

let catalogue =
  (* materials tagged with leaf subjects; the class hierarchy connects
     them to broader topics *)
  Result.get_ok
    (Rdf.of_turtle
       {|<linear-eq>   <rdfs:subClassOf> <algebra> .
         <quadratics>  <rdfs:subClassOf> <algebra> .
         <derivatives> <rdfs:subClassOf> <calculus> .
         <algebra>     <rdfs:subClassOf> <math> .
         <calculus>    <rdfs:subClassOf> <math> .
         <worksheet-1> <subject> <linear-eq> .
         <video-7>     <subject> <quadratics> .
         <quiz-3>      <subject> <derivatives> .|})

let test_result ~student ~topic ~score =
  Term.elem "test-result"
    [
      Term.elem "student" [ Term.text student ];
      Term.elem "topic" [ Term.text topic ];
      Term.elem "score" [ Term.num score ];
    ]

let () =
  let tutor =
    match node_of_program ~host:"tutor.example" tutor_program with
    | Ok n -> n
    | Error e -> failwith e
  in
  (* store the RDFS closure so rdf conditions see inherited subjects;
     the paper's "inference from RDF triples" *)
  Store.add_rdf (Node.store tutor) "/catalogue" (Rdf.rdfs_closure catalogue);
  Store.add_rdf (Node.store tutor) "/profile" (Rdf.create ());

  let net = Network.create () in
  Network.add_node_exn net tutor;

  Network.inject net ~to_:"tutor.example" ~label:"test-result"
    (test_result ~student:"franz" ~topic:"algebra" ~score:35.);
  Network.inject net ~to_:"tutor.example" ~label:"test-result"
    (test_result ~student:"mary" ~topic:"calculus" ~score:80.);
  ignore (Network.run_until_quiet net ());
  Network.inject net ~to_:"tutor.example" ~label:"test-result"
    (test_result ~student:"franz" ~topic:"algebra" ~score:75.);
  ignore (Network.run_until_quiet net ());

  Fmt.pr "--- tutor log ---@.";
  List.iter (Fmt.pr "  %s@.") (Node.logs tutor);
  Fmt.pr "--- student profile graph (after the retake) ---@.%s@."
    (let g = Option.get (Store.rdf (Node.store tutor) "/profile") in
     if Rdf.size g = 0 then "  (empty — franz recovered)" else Rdf.to_turtle g)
