(* An online marketplace across three Web sites (the paper's Section 2
   motivating scenario):

   - shop.example      receives orders, checks the customer register
                       through a deductive view, calls a shared [ship]
                       procedure or asks for payment first (ECAA);
                       composite SEQ and ABSENT queries handle paid and
                       unpaid orders (Thesis 5); an accounting rule set
                       (Thesis 12) tracks every service use.
   - warehouse.example reacts to pick events, updates stock, and raises
                       a restock alarm through an update-triggered rule
                       (integrity-constraint style, Thesis 1).
   - bank.example      turns invoices into payment events.

   Run with: dune exec examples/marketplace.exe
*)

open Xchange

let shop_program =
  {|
ruleset shop {
  procedure ship(Item, Who) {
    log "shipping %s to %s", $Item, $Who;
    raise to "warehouse.example" pick pick[item[$Item]]
  }

  view gold gold[all name[$N]]
    from in doc("/customers") customers{{customer{{name[var N], status["gold"]}}}}

  # gold customers ship immediately; others must pay first
  rule incoming-order:
    on order{{item[var Item], customer[var Who]}}
    if in view(gold) gold{{name[var Who]}}
    do call ship($Item, $Who)
    else { log "awaiting payment from %s for %s", $Who, $Item;
           raise to "bank.example" invoice invoice[customer[$Who], item[$Item]] }

  # order followed by its payment within 2 hours: ship (composite event)
  rule paid-order(consume):
    on seq{order{{item[var Item], customer[var Who]}},
           payment{{customer[var Who]}}} within 2 h
    do call ship($Item, $Who)

  # order with NO payment within 2 hours: cancel (absence query)
  rule unpaid-order(consume):
    on absent{order{{item[var Item], customer[var Who]}},
              payment{{customer[var Who]}}} within 2 h
    if not(in view(gold) gold{{name[var Who]}})
    do log "cancelling unpaid order: %s for %s", $Item, $Who
}
|}

let warehouse_program =
  {|
ruleset warehouse {
  rule pick:
    on pick{{item[var Item]}}
    do { log "picked %s", $Item;
         delete from "/stock" matching unit{{item[var Item]}} }

  # after any stock update, alarm when the shelf ran empty
  rule restock:
    on update{{@doc = "/stock"}}
    if not(in doc("/stock") stock{{unit{{}}}})
    do log "stock empty! ordering more"
}
|}

let bank_program =
  {|
ruleset bank {
  rule invoice:
    on invoice{{customer[var Who], item[var Item]}}
    do { log "invoicing %s", $Who;
         raise to "shop.example" payment payment[customer[$Who], item[$Item]] }
}
|}

let order item who =
  Term.elem "order" [ Term.elem "item" [ Term.text item ]; Term.elem "customer" [ Term.text who ] ]

let parse_ruleset src = match Parser.parse_program src with Ok rs -> rs | Error e -> failwith e

let () =
  (* the shop runs its service rules AND the accounting rules (Thesis 12:
     double reactivity, orthogonal rule sets over the same event stream) *)
  let shop_rules =
    Ruleset.make
      ~children:
        [ parse_ruleset shop_program; Accounting.ruleset ~service_labels:[ "order"; "payment" ] () ]
      "shop-root"
  in
  let shop = node_exn ~host:"shop.example" shop_rules in
  let warehouse = node_exn ~host:"warehouse.example" (parse_ruleset warehouse_program) in
  let bank = node_exn ~host:"bank.example" (parse_ruleset bank_program) in

  Store.add_doc (Node.store shop) "/customers"
    (Xml.parse_exn
       {|<customers xch:unordered="true">
           <customer><name>franz</name><status>gold</status></customer>
           <customer><name>mary</name><status>basic</status></customer>
         </customers>|});
  Store.add_doc (Node.store shop) Accounting.default_log_doc (Accounting.log_document ());
  Store.add_doc (Node.store warehouse) "/stock"
    (Xml.parse_exn
       {|<stock xch:unordered="true">
           <unit><item>ball</item></unit>
           <unit><item>whistle</item></unit>
         </stock>|});

  let net = Network.create () in
  List.iter (Network.add_node_exn net) [ shop; warehouse; bank ];
  Network.enable_heartbeat net ~period:(Clock.minutes 10);

  (* franz (gold) ships immediately; mary pays through the bank first *)
  Network.inject net ~to_:"shop.example" ~label:"order" (order "ball" "franz");
  Network.inject net ~to_:"shop.example" ~label:"order" (order "whistle" "mary");
  Network.run net ~until:(Clock.hours 3);

  List.iter
    (fun n ->
      Fmt.pr "--- log of %s ---@." (Node.host n);
      List.iter (Fmt.pr "  %s@.") (Node.logs n))
    [ shop; warehouse; bank ];

  Fmt.pr "--- accounting (%s) ---@." (Node.host shop);
  let usage = Accounting.summary (Node.store shop) () in
  List.iter (fun u -> Fmt.pr "  %-10s used %d time(s)@." u.Accounting.service u.Accounting.count) usage;
  Fmt.pr "  bill at 2.50/order, 0.10/payment: %.2f EUR@."
    (Accounting.bill ~rates:[ ("order", 2.5); ("payment", 0.1) ] usage);
  Fmt.pr "--- traffic ---@.  %d messages, %d bytes@."
    (Network.transport_stats net).Transport.messages
    (Network.transport_stats net).Transport.bytes
