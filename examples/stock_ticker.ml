(* The paper's stock-market scenario (Thesis 5, event accumulation):
   "a stock market application might require notification if the average
   over the last 5 reported stock prices raises by 5%".

   A trader node watches a price feed with a RISES accumulation query
   and places buy orders; a second AVG query maintains a rolling
   indicator document; a broker node executes the orders.

   Run with: dune exec examples/stock_ticker.exe
*)

open Xchange

let trader_program =
  {|
ruleset trader {
  # the headline query: avg of the last 5 prices rises by 5%
  rule momentum:
    on rises($P, 5, 1.05) {price{{stock[var S], value[var P]}}} as Avg
    do { log "momentum on %s (new 5-avg %s)", $S, $Avg;
         raise to "broker.example" buy buy[stock[$S], limit[expr($Avg * 1.01)]] }

  # rolling indicator: always keep the latest 3-average per stock
  rule indicator:
    on avg($P) last 3 {price{{stock[var S], value[var P]}}} as A
    do { delete from "/indicators" matching ind{{stock[var S]}};
         insert into "/indicators" ind[stock[$S], avg3[$A]] }
}
|}

let broker_program =
  {|
ruleset broker {
  rule execute:
    on buy{{stock[var S], limit[var L]}}
    do log "executing buy %s (limit %s)", $S, $L
}
|}

let price ~stock ~value =
  Term.elem "price" [ Term.elem "stock" [ Term.text stock ]; Term.elem "value" [ Term.num value ] ]

let () =
  let trader =
    match node_of_program ~host:"trader.example" trader_program with
    | Ok n -> n
    | Error e -> failwith e
  in
  let broker =
    match node_of_program ~host:"broker.example" broker_program with
    | Ok n -> n
    | Error e -> failwith e
  in
  Store.add_doc (Node.store trader) "/indicators" (Term.elem ~ord:Term.Unordered "indicators" []);

  let net = Network.create () in
  Network.add_node_exn net trader;
  Network.add_node_exn net broker;

  (* two interleaved feeds: ACME trends up, DULL is flat *)
  let acme = [ 100.; 101.; 99.; 100.; 100.; 140.; 155.; 150.; 160.; 185. ] in
  let dull = [ 50.; 50.; 50.1; 49.9; 50.; 50.; 50.; 50.1; 49.9; 50. ] in
  List.iteri
    (fun i (a, d) ->
      Network.run net ~until:(i * Clock.seconds 10);
      Network.inject net ~sender:"feed.example" ~to_:"trader.example" ~label:"price"
        (price ~stock:"ACME" ~value:a);
      Network.inject net ~sender:"feed.example" ~to_:"trader.example" ~label:"price"
        (price ~stock:"DULL" ~value:d))
    (List.combine acme dull);
  ignore (Network.run_until_quiet net ());

  Fmt.pr "--- trader log ---@.";
  List.iter (Fmt.pr "  %s@.") (Node.logs trader);
  Fmt.pr "--- broker log ---@.";
  List.iter (Fmt.pr "  %s@.") (Node.logs broker);
  Fmt.pr "--- indicators ---@.%s@."
    (Xml.to_string (Option.get (Store.doc (Node.store trader) "/indicators")))
