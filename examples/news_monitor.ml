(* Thesis 10's motivating scenario: "consider monitoring a news Web site
   for updates to a particular article: for this task, it is necessary
   to (uniquely) identify the article of interest."

   A news site edits its articles; a reader monitors one specific
   article under both identity disciplines the paper contrasts:

   - a SURROGATE watch follows the article through any number of edits
     (the object keeps its identity while its value changes);
   - an EXTENSIONAL watch knows the article only by value and loses it
     at the very first edit.

   The reader also runs a polling loop against the remote document
   (Thesis 3's pull baseline) whose change events drive a reactive rule.

   Run with: dune exec examples/news_monitor.exe
*)

open Xchange

let initial_news =
  Xml.parse_exn
    {|<news xch:unordered="true">
        <article><title>election</title><body>first results</body></article>
        <article><title>weather</title><body>rain tomorrow</body></article>
      </news>|}

let reader_program =
  {|
ruleset reader {
  rule on-change:
    on "poll:changed": changed{{desc article{{title[var T]}}}}
    do log "feed changed; it still carries article %s", $T
}
|}

let () =
  let net = Network.create ~latency:(fun ~from:_ ~to_:_ -> 5) () in
  let site = node_exn ~host:"news.example" (Ruleset.make "site") in
  Store.add_doc (Node.store site) "/news" initial_news;
  let reader =
    match node_of_program ~host:"reader.example" reader_program with
    | Ok n -> n
    | Error e -> failwith e
  in
  Network.add_node_exn net site;
  Network.add_node_exn net reader;
  ignore (Poll.attach net ~poller:"reader.example" ~target:"news.example/news" ~period:(Clock.seconds 10));

  (* watch the election article both ways *)
  let store = Node.store site in
  let election_path =
    let doc = Option.get (Store.doc store "/news") in
    Path.select doc [ (Path.Child, Path.Tag "article") ]
    |> List.find (fun (_, a) ->
           Simulate.holds (Qterm.el "article" [ Qterm.pos (Qterm.el "title" [ Qterm.pos (Qterm.txt "election") ]) ]) a)
    |> fst
  in
  let surrogate = Result.get_ok (Store.watch_surrogate store ~doc:"/news" election_path) in
  let election_value =
    Term.strip_ids (Option.get (Path.get (Option.get (Store.doc store "/news")) election_path))
  in
  let extensional = Result.get_ok (Store.watch_extensional store ~doc:"/news" election_value) in

  let show_watches label =
    let render = function
      | `Unchanged -> "unchanged"
      | `Changed t -> Fmt.str "CHANGED -> %s" (Xml.to_string (Term.strip_ids t))
      | `Lost -> "LOST (cannot identify the article any more)"
    in
    Fmt.pr "%s@.  surrogate watch:   %s@.  extensional watch: %s@." label
      (render (Store.poll_watch store surrogate))
      (render (Store.poll_watch store extensional))
  in

  show_watches "before any edit:";

  (* the site edits the election article twice *)
  let edit body =
    Store.replace_at store ~doc:"/news" election_path
      (Xml.parse_exn (Fmt.str "<article><title>election</title><body>%s</body></article>" body))
    |> Result.get_ok
  in
  Network.run net ~until:(Clock.seconds 15);
  edit "updated results";
  show_watches "after the first edit:";
  Network.run net ~until:(Clock.seconds 25);
  edit "final results";
  show_watches "after the second edit:";
  Network.run net ~until:(Clock.seconds 45);

  Fmt.pr "--- reader log (poll-driven reactive rule) ---@.";
  List.iter (Fmt.pr "  %s@.") (Node.logs reader);
  let s = Network.transport_stats net in
  Fmt.pr "--- polling cost: %d GETs, %d bytes ---@." s.Transport.gets s.Transport.bytes
