(* The paper's flight scenario (Thesis 5): "if a flight has been
   canceled, and there is no notification within the next two hours that
   the passenger is put onto another flight, this might well require a
   reaction."

   An airline node publishes cancellations and rebookings; a travel
   agency monitors them with an ABSENT query and books hotels for
   stranded passengers.  A second rule uses TIMES to spot disruption
   storms (3 cancellations of the same airline within 6 hours).

   Run with: dune exec examples/flight_monitor.exe
*)

open Xchange

let agency_program =
  {|
ruleset agency {
  procedure book-hotel(Who) {
    log "booking hotel for stranded passenger %s", $Who;
    insert into "/hotel-bookings" booking[passenger[$Who]]
  }

  # cancellation with no rebooking for the same passenger within 2h
  rule stranded:
    on absent{cancellation{{passenger[var Who], flight[var F]}},
              rebooking{{passenger[var Who]}}} within 2 h
    do call book-hotel($Who)

  # disruption storm: 3 cancellations of one airline within 6 hours
  rule storm(consume):
    on times 3 {cancellation{{airline[var A]}}} within 6 h
    do log "ALERT: airline %s is melting down", $A

  # keep an audit trail: persist every cancellation (volatile -> persistent,
  # Thesis 4)
  rule audit:
    on cancellation: var E
    do insert into "/audit" entry[$E]
}
|}

let cancellation ~passenger ~flight ~airline =
  Term.elem "cancellation"
    [
      Term.elem "passenger" [ Term.text passenger ];
      Term.elem "flight" [ Term.text flight ];
      Term.elem "airline" [ Term.text airline ];
    ]

let rebooking ~passenger =
  Term.elem "rebooking" [ Term.elem "passenger" [ Term.text passenger ] ]

let () =
  let agency =
    match node_of_program ~host:"agency.example" agency_program with
    | Ok n -> n
    | Error e -> failwith e
  in
  Store.add_doc (Node.store agency) "/hotel-bookings" (Term.elem ~ord:Term.Unordered "bookings" []);
  Store.add_doc (Node.store agency) "/audit" (Term.elem ~ord:Term.Unordered "audit" []);

  let net = Network.create () in
  Network.add_node_exn net agency;
  Network.enable_heartbeat net ~period:(Clock.minutes 15);

  let at t f = if Network.clock net < t then Network.run net ~until:t; f () in
  let inject label payload = Network.inject net ~sender:"airline.example" ~to_:"agency.example" ~label payload in

  at (Clock.minutes 0) (fun () ->
      inject "cancellation" (cancellation ~passenger:"franz" ~flight:"LH123" ~airline:"LH"));
  at (Clock.minutes 30) (fun () -> inject "rebooking" (rebooking ~passenger:"franz"));
  at (Clock.hours 1) (fun () ->
      inject "cancellation" (cancellation ~passenger:"mary" ~flight:"LH456" ~airline:"LH"));
  at (Clock.hours 4) (fun () ->
      inject "cancellation" (cancellation ~passenger:"paul" ~flight:"LH789" ~airline:"LH"));
  at (Clock.hours 5) (fun () ->
      inject "cancellation" (cancellation ~passenger:"rita" ~flight:"XY1" ~airline:"XY"));
  Network.run net ~until:(Clock.hours 12);

  Fmt.pr "--- agency log ---@.";
  List.iter (Fmt.pr "  %s@.") (Node.logs agency);
  Fmt.pr "--- hotel bookings ---@.%s@."
    (Xml.to_string (Option.get (Store.doc (Node.store agency) "/hotel-bookings")));
  Fmt.pr "--- audit trail: %d entries ---@."
    (List.length (Term.children (Option.get (Store.doc (Node.store agency) "/audit"))))
