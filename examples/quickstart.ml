(* Quickstart: a reactive rule in the surface syntax, end to end.

   One node runs a single ECA rule: when an order event arrives, check
   the (persistent) customer register, and either thank the customer or
   ask a clerk to review.  Run with:

     dune exec examples/quickstart.exe
*)

open Xchange

let program =
  {|
ruleset quickstart {
  rule handle-order:
    on order{{item[var Item], customer[var Who]}}
    if in doc("/customers") customers{{customer{{name[var Who], status["gold"]}}}}
    do { log "shipping %s to gold customer %s", $Item, $Who;
         insert into "/shipments" shipment[item[$Item], to[$Who]] }
    else log "order for %s needs review (unknown or basic customer %s)", $Item, $Who
}
|}

let customers =
  Xml.parse_exn
    {|<customers xch:unordered="true">
        <customer><name>franz</name><status>gold</status></customer>
        <customer><name>mary</name><status>basic</status></customer>
      </customers>|}

let order ~item ~customer =
  Term.elem "order"
    [ Term.elem "item" [ Term.text item ]; Term.elem "customer" [ Term.text customer ] ]

let () =
  (* 1. a node running the program *)
  let shop =
    match node_of_program ~host:"shop.example" program with
    | Ok n -> n
    | Error e -> failwith e
  in
  Store.add_doc (Node.store shop) "/customers" customers;
  Store.add_doc (Node.store shop) "/shipments" (Term.elem ~ord:Term.Unordered "shipments" []);

  (* 2. a (simulated) Web around it *)
  let net = Network.create () in
  Network.add_node_exn net shop;

  (* 3. events arrive as messages *)
  Network.inject net ~to_:"shop.example" ~label:"order" (order ~item:"ball" ~customer:"franz");
  Network.inject net ~to_:"shop.example" ~label:"order" (order ~item:"whistle" ~customer:"mary");
  ignore (Network.run_until_quiet net ());

  (* 4. observe reactions *)
  Fmt.pr "--- log of shop.example ---@.";
  List.iter (Fmt.pr "  %s@.") (Node.logs shop);
  Fmt.pr "--- /shipments ---@.%s@."
    (Xml.to_string (Option.get (Store.doc (Node.store shop) "/shipments")));
  Fmt.pr "rule firings: %d, messages on the wire: %d@." (Node.firings shop)
    (Network.transport_stats net).Transport.messages
